"""The §3.3 merging claim, end to end.

The non-compact relational rule set factors every physical requirement
through the SORT enforcer-operator and auxiliary operators (footnote 5);
P2V must merge it into an optimizer behaviourally identical to the one
generated from the compact rule set — and to the hand-coded Volcano one.
"""

import pytest

from repro.optimizers.relational_noncompact import build_relational_noncompact
from repro.prairie.translate import translate
from repro.volcano.search import VolcanoOptimizer
from repro.workloads.catalogs import make_experiment_catalog
from repro.workloads.expressions import build_e1
from repro.workloads.trees import TreeBuilder


@pytest.fixture(scope="module")
def noncompact_translation():
    return translate(build_relational_noncompact())


class TestMerging:
    def test_rule_counts_match_compact(self, noncompact_translation):
        volcano = noncompact_translation.volcano
        # 4 T-rules − 2 renamings = 2 trans; 6 I-rules − Null − enforcer = 4
        assert len(volcano.trans_rules) == 2
        assert len(volcano.impl_rules) == 4
        assert len(volcano.enforcers) == 1

    def test_both_factorings_deleted(self, noncompact_translation):
        report = noncompact_translation.report
        assert set(report.deleted_renaming_rules) == {
            "join_to_jopr",
            "join_to_jjnl",
        }

    def test_auxiliary_operators_aliased_away(self, noncompact_translation):
        report = noncompact_translation.report
        assert report.operator_aliases == {"JOPR": "JOIN", "JJNL": "JOIN"}
        assert "JOPR" not in noncompact_translation.volcano.operators
        assert "JJNL" not in noncompact_translation.volcano.operators

    def test_requirements_folded(self, noncompact_translation):
        assert set(noncompact_translation.report.merged_i_rules) == {
            "join_nested_loops",
            "join_merge_join",
        }
        merge_join = next(
            r
            for r in noncompact_translation.merged.i_rules
            if r.name == "join_merge_join"
        )
        # both inputs gained synthesized requirement descriptors
        assert merge_join.rhs_input_descriptor(0) is not None
        assert merge_join.rhs_input_descriptor(1) is not None
        assert merge_join.operator_name == "JOIN"

    def test_tuple_order_still_physical(self, noncompact_translation):
        # classification runs post-merge: the folded assignments are what
        # make tuple_order physical in this rule set
        assert noncompact_translation.analysis.physical_properties == (
            "tuple_order",
        )


class TestBehaviouralIdentity:
    @pytest.mark.parametrize("n_joins", [1, 2, 3, 4])
    @pytest.mark.parametrize("with_indices", [False, True])
    def test_same_as_compact(
        self,
        schema,
        relational_volcano_generated,
        noncompact_translation,
        n_joins,
        with_indices,
    ):
        catalog = make_experiment_catalog(
            n_joins + 1, with_indices=with_indices, with_targets=False, instance=2
        )
        builder = TreeBuilder(schema, catalog)
        tree = build_e1(builder, n_joins)
        compact = VolcanoOptimizer(relational_volcano_generated, catalog).optimize(
            tree
        )
        noncompact = VolcanoOptimizer(
            noncompact_translation.volcano, catalog
        ).optimize(build_e1(builder, n_joins))
        assert noncompact.cost == pytest.approx(compact.cost, rel=1e-12)
        assert noncompact.equivalence_classes == compact.equivalence_classes
        assert noncompact.stats.mexprs == compact.stats.mexprs

    def test_same_as_hand_coded(
        self, schema, relational_volcano_hand, noncompact_translation
    ):
        catalog = make_experiment_catalog(4, with_indices=True, with_targets=False)
        builder = TreeBuilder(schema, catalog)
        tree = build_e1(builder, 3)
        hand = VolcanoOptimizer(relational_volcano_hand, catalog).optimize(tree)
        noncompact = VolcanoOptimizer(
            noncompact_translation.volcano, catalog
        ).optimize(build_e1(builder, 3))
        assert noncompact.cost == pytest.approx(hand.cost, rel=1e-12)
        assert noncompact.equivalence_classes == hand.equivalence_classes

    def test_sorted_request_same_plan(
        self, schema, relational_volcano_generated, noncompact_translation
    ):
        catalog = make_experiment_catalog(3, with_targets=False, instance=0)
        builder = TreeBuilder(schema, catalog)
        tree = build_e1(builder, 2)
        compact = VolcanoOptimizer(relational_volcano_generated, catalog).optimize(
            tree, required=("b1",)
        )
        noncompact = VolcanoOptimizer(
            noncompact_translation.volcano, catalog
        ).optimize(build_e1(builder, 2), required=("b1",))
        assert noncompact.cost == pytest.approx(compact.cost, rel=1e-12)
        assert noncompact.plan.signature() == compact.plan.signature()

    def test_executes_identically(
        self, schema, noncompact_translation, relational_volcano_generated
    ):
        from repro.engine.executor import (
            Database,
            execute_plan,
            rows_multiset,
        )

        catalog = make_experiment_catalog(
            3, with_targets=False, fixed_cardinality=40
        )
        builder = TreeBuilder(schema, catalog)
        tree = build_e1(builder, 2)
        db = Database(catalog, seed=1)
        compact_rows = execute_plan(
            VolcanoOptimizer(relational_volcano_generated, catalog)
            .optimize(tree)
            .plan,
            db,
        )
        noncompact_rows = execute_plan(
            VolcanoOptimizer(noncompact_translation.volcano, catalog)
            .optimize(tree)
            .plan,
            db,
        )
        assert rows_multiset(compact_rows) == rows_multiset(noncompact_rows)

"""Shared fixtures for the test suite.

Rule sets and their translations are expensive enough to build once per
session; catalogs and databases are small and deterministic.
"""

from __future__ import annotations

import pytest

from repro.catalog.predicates import equals_attr, equals_const
from repro.catalog.schema import Catalog, IndexInfo, StoredFileInfo
from repro.engine.executor import Database
from repro.optimizers.oodb import build_oodb_prairie
from repro.optimizers.oodb_volcano import build_oodb_volcano
from repro.optimizers.relational import build_relational_prairie
from repro.optimizers.relational_volcano import build_relational_volcano
from repro.optimizers.schema import make_schema
from repro.prairie.translate import translate
from repro.workloads.trees import TreeBuilder


@pytest.fixture(scope="session")
def schema():
    return make_schema()


@pytest.fixture(scope="session")
def relational_prairie():
    return build_relational_prairie()


@pytest.fixture(scope="session")
def relational_translation(relational_prairie):
    return translate(relational_prairie)


@pytest.fixture(scope="session")
def relational_volcano_generated(relational_translation):
    return relational_translation.volcano


@pytest.fixture(scope="session")
def relational_volcano_hand():
    return build_relational_volcano()


@pytest.fixture(scope="session")
def oodb_prairie():
    return build_oodb_prairie()


@pytest.fixture(scope="session")
def oodb_translation(oodb_prairie):
    return translate(oodb_prairie)


@pytest.fixture(scope="session")
def oodb_volcano_generated(oodb_translation):
    return oodb_translation.volcano


@pytest.fixture(scope="session")
def oodb_volcano_hand():
    return build_oodb_volcano()


def small_relational_catalog(with_indices: bool = True) -> Catalog:
    """Three relations R1–R3 with a linear join structure (a/b attrs)."""
    indices1 = (IndexInfo("a1"),) if with_indices else ()
    indices2 = (IndexInfo("a2"),) if with_indices else ()
    return Catalog(
        [
            StoredFileInfo("R1", ("a1", "b1"), 1000, 100, indices=indices1),
            StoredFileInfo("R2", ("a2", "b2"), 500, 100, indices=indices2),
            StoredFileInfo("R3", ("a3", "b3"), 2000, 100),
        ]
    )


@pytest.fixture()
def rel_catalog():
    return small_relational_catalog()


@pytest.fixture()
def rel_builder(schema, rel_catalog):
    return TreeBuilder(schema, rel_catalog)


def tiny_exec_catalog() -> Catalog:
    """A small catalog with references and sets, sized for execution."""
    return Catalog(
        [
            StoredFileInfo(
                "C1",
                ("a1", "b1", "r1", "s1"),
                40,
                100,
                indices=(IndexInfo("a1"),),
                reference_attrs=(("r1", "T1"),),
                set_valued_attrs=("s1",),
            ),
            StoredFileInfo(
                "C2",
                ("a2", "b2", "r2", "s2"),
                30,
                100,
                reference_attrs=(("r2", "T2"),),
                set_valued_attrs=("s2",),
            ),
            StoredFileInfo(
                "T1",
                ("t1_id", "t1_x", "t1_y"),
                20,
                80,
                identity_attr="t1_id",
            ),
            StoredFileInfo(
                "T2",
                ("t2_id", "t2_x", "t2_y"),
                25,
                80,
                identity_attr="t2_id",
            ),
        ]
    )


@pytest.fixture()
def exec_catalog():
    return tiny_exec_catalog()


@pytest.fixture()
def exec_db(exec_catalog):
    return Database(exec_catalog, seed=11)


@pytest.fixture()
def exec_builder(schema, exec_catalog):
    return TreeBuilder(schema, exec_catalog)


# Handy predicate shorthands for tests.
@pytest.fixture()
def join_pred_12():
    return equals_attr("b1", "b2")


@pytest.fixture()
def sel_pred_a1():
    return equals_const("a1", 3)

"""Rule-provenance tests: every Volcano firing maps back to its source.

P2V mints a provenance id for each rule it generates
(``prairie:<kind>:<name>``); hand-coded Volcano rules get a
``volcano:<kind>:<name>`` id by default.  These tests pin the minting
scheme itself and the end-to-end property the observability layer
promises: every rule event in a trace of a P2V-generated optimizer
resolves to a named rule of the source Prairie rule set.
"""

import pytest

from repro.errors import TranslationError
from repro.obs import CollectingTracer
from repro.prairie.compile import mint_provenance, split_provenance
from repro.volcano.search import VolcanoOptimizer
from repro.workloads.queries import make_query_instance

#: Trace event types that must carry a provenance id.
RULE_EVENTS = ("trans_fired", "impl_costed", "enforcer_applied")


class TestMinting:
    def test_mint_and_split_round_trip(self):
        pid = mint_provenance("prairie", "t_rule", "join_commute")
        assert pid == "prairie:t_rule:join_commute"
        assert split_provenance(pid) == ("prairie", "t_rule", "join_commute")

    def test_name_may_contain_colons(self):
        pid = mint_provenance("prairie", "i_rule", "weird:name")
        assert split_provenance(pid) == ("prairie", "i_rule", "weird:name")

    @pytest.mark.parametrize(
        "source,kind,name",
        [("", "k", "n"), ("s", "", "n"), ("s", "k", ""), ("a:b", "k", "n"), ("s", "k:x", "n")],
    )
    def test_bad_components_rejected(self, source, kind, name):
        with pytest.raises(TranslationError):
            mint_provenance(source, kind, name)


class TestRuleSetProvenance:
    def test_generated_rules_carry_prairie_ids(self, oodb_volcano_generated):
        for rule in oodb_volcano_generated.trans_rules:
            assert rule.provenance_id == f"prairie:t_rule:{rule.name}"
        for rule in oodb_volcano_generated.impl_rules:
            assert rule.provenance_id == f"prairie:i_rule:{rule.name}"
        for enforcer in oodb_volcano_generated.enforcers:
            assert enforcer.provenance_id == f"prairie:i_rule:{enforcer.name}"

    def test_hand_coded_rules_default_to_volcano_ids(self, oodb_volcano_hand):
        for rule in oodb_volcano_hand.trans_rules:
            assert rule.provenance_id == f"volcano:trans_rule:{rule.name}"
        for rule in oodb_volcano_hand.impl_rules:
            assert rule.provenance_id == f"volcano:impl_rule:{rule.name}"

    def test_generated_ids_resolve_to_prairie_rules(
        self, oodb_prairie, oodb_volcano_generated
    ):
        """Static version of the end-to-end property: the name component
        of every generated id names a rule in the Prairie source."""
        prairie_names = {r.name for r in oodb_prairie.t_rules}
        prairie_names.update(r.name for r in oodb_prairie.i_rules)
        for collection in (
            oodb_volcano_generated.trans_rules,
            oodb_volcano_generated.impl_rules,
            oodb_volcano_generated.enforcers,
        ):
            for rule in collection:
                source, _kind, name = split_provenance(rule.provenance_id)
                assert source == "prairie"
                assert name in prairie_names


class TestTraceProvenance:
    @pytest.mark.parametrize("qid", ["Q1", "Q5", "Q7"])
    def test_every_fired_rule_resolves_to_prairie(
        self, schema, oodb_prairie, oodb_volcano_generated, qid
    ):
        """The acceptance property: tracing a generated optimizer, every
        rule event's provenance id resolves back to a named Prairie
        T-/I-rule of the source OODB rule set (stored-file leaf winners,
        which no rule derives, carry a ``file:`` id instead)."""
        prairie_names = {r.name for r in oodb_prairie.t_rules}
        prairie_names.update(r.name for r in oodb_prairie.i_rules)
        catalog, tree = make_query_instance(schema, qid, 2, 0)
        tracer = CollectingTracer()
        VolcanoOptimizer(
            oodb_volcano_generated, catalog, tracer=tracer
        ).optimize(tree)
        checked = 0
        for event in tracer.events:
            if event.type in RULE_EVENTS:
                provenance = event.data["provenance"]
                source, kind, name = split_provenance(provenance)
                assert source == "prairie", provenance
                assert kind in ("t_rule", "i_rule")
                assert name in prairie_names
                checked += 1
            elif event.type == "winner_filed":
                provenance = event.data["provenance"]
                assert provenance.split(":", 1)[0] in ("prairie", "file")
        assert checked > 0

    def test_hand_coded_trace_carries_volcano_ids(
        self, schema, oodb_volcano_hand
    ):
        catalog, tree = make_query_instance(schema, "Q1", 2, 0)
        tracer = CollectingTracer()
        VolcanoOptimizer(oodb_volcano_hand, catalog, tracer=tracer).optimize(
            tree
        )
        sources = {
            e.data["provenance"].split(":", 1)[0]
            for e in tracer.events
            if e.type in RULE_EVENTS
        }
        assert sources == {"volcano"}

    def test_relational_pair_provenance(
        self, schema, relational_volcano_generated, relational_prairie
    ):
        """Same property over the second bundled optimizer."""
        from repro.workloads.catalogs import make_experiment_catalog
        from repro.workloads.expressions import build_e1
        from repro.workloads.trees import TreeBuilder

        prairie_names = {r.name for r in relational_prairie.t_rules}
        prairie_names.update(r.name for r in relational_prairie.i_rules)
        catalog = make_experiment_catalog(3, with_targets=False, instance=0)
        tree = build_e1(TreeBuilder(schema, catalog), 2)
        tracer = CollectingTracer()
        VolcanoOptimizer(
            relational_volcano_generated, catalog, tracer=tracer
        ).optimize(tree)
        for event in tracer.events:
            if event.type in RULE_EVENTS:
                source, _kind, name = split_provenance(
                    event.data["provenance"]
                )
                assert source == "prairie"
                assert name in prairie_names

"""Tests for the prairie-opt command-line interface."""

import io

import pytest

from repro.cli import main

MINI_SPEC = """
property file_name : string;
property attributes : attrs;
property num_records : float;
property tuple_order : order;
property cost : cost;

operator RET(file);
operator SORT(stream);
algorithm File_scan(file);
algorithm Merge_sort(stream);
algorithm Null(stream);

irule ret_file_scan:
    RET(?F:DF):D1 => File_scan(?F):D2
    ( TRUE )
    {{ D2 = D1; D2.tuple_order = DONT_CARE; }}
    {{ D2.cost = scan_cost(D1.file_name); }}

irule sort_merge_sort:
    SORT(?S1:D1):D2 => Merge_sort(?S1):D3
    ( D2.tuple_order != DONT_CARE )
    {{ D3 = D2; }}
    {{ D3.cost = D1.cost + 0.02 * D3.num_records * log2(D3.num_records); }}

irule sort_null:
    SORT(?S1:D1):D2 => Null(?S1:D3):D4
    ( TRUE )
    {{ D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }}
    {{ D4.cost = D3.cost; }}
"""


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "mini.prairie"
    path.write_text(MINI_SPEC)
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_lists_both_rule_sets(self):
        code, text = run(["info"])
        assert code == 0
        assert "relational" in text
        assert "oodb" in text
        assert "22 T-rules" in text
        assert "17 trans_rules" in text


class TestValidate:
    def test_valid_spec(self, spec_file):
        code, text = run(["validate", spec_file])
        assert code == 0
        assert text.startswith("OK:")
        assert "3 I-rules" in text

    def test_invalid_spec(self, tmp_path):
        path = tmp_path / "bad.prairie"
        path.write_text("property cost : cost")  # missing semicolon
        code, _text = run(["validate", str(path)])
        assert code == 1

    def test_missing_file(self):
        code, _text = run(["validate", "/nonexistent/spec"])
        assert code == 1


class TestTranslate:
    def test_summary(self, spec_file):
        code, text = run(["translate", spec_file])
        assert code == 0
        assert "p2v-generated" in text
        assert "physical=('tuple_order',)" in text

    def test_emit_volcano(self, spec_file):
        code, text = run(["translate", spec_file, "--emit", "volcano"])
        assert code == 0
        assert "impl_rule ret_file_scan" in text
        assert "enforcer sort_merge_sort" in text

    def test_emit_prairie_round_trips(self, spec_file):
        code, text = run(["translate", spec_file, "--emit", "prairie"])
        assert code == 0
        from repro.optimizers.helpers import domain_helpers
        from repro.prairie.dsl import compile_spec

        reparsed = compile_spec(text, helpers=domain_helpers())
        assert len(reparsed.i_rules) == 3


class TestShippedSpecFiles:
    """The standalone .prairie files under examples/specs/ stay valid."""

    SPECS = __import__("pathlib").Path(__file__).parent.parent / "examples" / "specs"

    def test_relational_spec_file(self):
        code, text = run(["validate", str(self.SPECS / "relational.prairie")])
        assert code == 0
        assert "2 T-rules" in text

    def test_oodb_spec_file(self):
        code, text = run(["validate", str(self.SPECS / "oodb.prairie")])
        assert code == 0
        assert "22 T-rules" in text

    def test_oodb_spec_translates_to_paper_counts(self):
        code, text = run(["translate", str(self.SPECS / "oodb.prairie")])
        assert code == 0
        assert "17 trans_rules, 9 impl_rules, 1 enforcers" in text


class TestOptimize:
    def test_default_query(self):
        code, text = run(["optimize", "--query", "Q1", "--joins", "1", "--quiet"])
        assert code == 0
        assert "Hash_join" in text
        assert "total estimated cost" in text

    def test_verbose_statistics(self):
        code, text = run(["optimize", "--query", "Q1", "--joins", "1"])
        assert code == 0
        assert "equivalence classes" in text

    def test_relational_ruleset(self):
        code, text = run(
            ["optimize", "--ruleset", "relational", "--query", "Q2",
             "--joins", "1", "--quiet"]
        )
        assert code == 0
        assert "Merge_join" in text or "Nested_loops" in text

    def test_hand_coded_flag_same_cost(self):
        _code, generated = run(
            ["optimize", "--query", "Q1", "--joins", "2", "--quiet"]
        )
        _code, hand = run(
            ["optimize", "--query", "Q1", "--joins", "2", "--quiet",
             "--hand-coded"]
        )
        cost_line = [l for l in generated.splitlines() if "total" in l]
        assert cost_line == [l for l in hand.splitlines() if "total" in l]

    def test_bottomup_engine(self):
        code, text = run(
            ["optimize", "--query", "Q1", "--joins", "1",
             "--engine", "bottomup", "--quiet"]
        )
        assert code == 0
        assert "total estimated cost" in text

    def test_heuristics_flags(self):
        code, text = run(
            ["optimize", "--query", "Q5", "--joins", "2", "--quiet",
             "--max-groups", "15", "--disable-rule", "select_split"]
        )
        assert code == 0
        assert "total estimated cost" in text

    def test_memo_dump(self):
        code, text = run(
            ["optimize", "--query", "Q1", "--joins", "1", "--quiet", "--memo"]
        )
        assert code == 0
        assert "memo:" in text
        assert "g0" in text

    def test_unknown_query_errors(self):
        code, _text = run(["optimize", "--query", "Q99", "--quiet"])
        assert code == 1

    def test_metrics_to_stdout(self):
        code, text = run(
            ["optimize", "--query", "Q1", "--joins", "1", "--quiet",
             "--metrics"]
        )
        assert code == 0
        assert "metrics:" in text

    def test_metrics_file_routes_registry_out_of_stdout(self, tmp_path):
        path = str(tmp_path / "metrics.txt")
        code, text = run(
            ["optimize", "--query", "Q1", "--joins", "1", "--quiet",
             "--metrics", "--metrics-file", path]
        )
        assert code == 0
        # plan output no longer interleaves with the registry dump
        assert "counters:" not in text
        assert path in text
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        assert "search.trans_fired" in content

    def test_metrics_file_implies_metrics(self, tmp_path):
        path = str(tmp_path / "metrics.txt")
        code, _text = run(
            ["optimize", "--query", "Q1", "--joins", "1", "--quiet",
             "--metrics-file", path]
        )
        assert code == 0
        assert __import__("os").path.exists(path)

    def test_metrics_openmetrics_format(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        code, _text = run(
            ["optimize", "--query", "Q1", "--joins", "1", "--quiet",
             "--metrics-file", path, "--metrics-format", "openmetrics"]
        )
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        assert content.endswith("# EOF\n")
        assert "search_trans_fired_total" in content


class TestBatch:
    def test_serial_batch_runs(self):
        code, text = run(
            ["batch", "--queries", "Q1,Q2", "--mode", "serial"]
        )
        assert code == 0
        assert "2 queries" in text
        assert "parent cache:" in text

    def test_batch_trace_chrome(self, tmp_path):
        import json

        path = str(tmp_path / "batch.json")
        code, text = run(
            ["batch", "--queries", "Q1,Q3", "--mode", "serial",
             "--trace", path]
        )
        assert code == 0
        assert "trace:" in text
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        names = {r["name"] for r in doc["traceEvents"]}
        assert "optimize_query" in names

    def test_batch_trace_jsonl(self, tmp_path):
        import json

        path = str(tmp_path / "batch.jsonl")
        code, _text = run(
            ["batch", "--queries", "Q1", "--mode", "serial",
             "--trace", path, "--trace-format", "jsonl"]
        )
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle if line.strip()]
        assert events[0]["type"] == "batch_begin"
        assert events[-1]["type"] == "batch_end"

    def test_batch_openmetrics_to_file(self, tmp_path):
        path = str(tmp_path / "batch.prom")
        code, _text = run(
            ["batch", "--queries", "Q1,Q2", "--mode", "serial",
             "--metrics-file", path, "--metrics-format", "openmetrics"]
        )
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        assert content.endswith("# EOF\n")
        assert "batch_queries" in content

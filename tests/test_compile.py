"""Unit tests for the rule-action compiler (compiled == interpreted)."""

import pytest

from repro.algebra.descriptors import Descriptor
from repro.algebra.properties import (
    DescriptorSchema,
    DONT_CARE,
    PropertyDef,
    PropertyType,
)
from repro.prairie.actions import (
    ActionBlock,
    ActionEnv,
    PyAction,
    PyTest,
    TRUE_TEST,
)
from repro.prairie.build import (
    assign,
    block,
    both,
    call,
    copy_desc,
    desc,
    div,
    either,
    eq,
    lit,
    mul,
    ne,
    neg,
    add,
    sub,
    prop,
    test as make_test,
)
from repro.prairie.compile import compile_block, compile_test
from repro.prairie.helpers import default_helpers


@pytest.fixture()
def schema():
    return DescriptorSchema(
        [
            PropertyDef("cost", PropertyType.COST),
            PropertyDef("num_records", PropertyType.FLOAT),
            PropertyDef("tuple_order", PropertyType.ORDER),
            PropertyDef("attributes", PropertyType.ATTRS),
        ]
    )


def make_env(schema, ctx=None):
    d1 = Descriptor(
        schema,
        {"cost": 2.0, "num_records": 8.0, "attributes": ("a", "b"), "tuple_order": "a"},
    )
    d2 = Descriptor(schema)
    return ActionEnv({"D1": d1, "D2": d2}, default_helpers(), context=ctx)


def run_both(schema, a_block):
    """Execute a block interpreted and compiled; return both D2 snapshots."""
    env_i = make_env(schema)
    a_block.execute(env_i)
    env_c = make_env(schema)
    compile_block(a_block, default_helpers())(env_c)
    return env_i.descriptors["D2"].as_dict(), env_c.descriptors["D2"].as_dict()


class TestCompiledBlocks:
    def test_property_assignment(self, schema):
        interpreted, compiled = run_both(
            schema, block(assign("D2", "cost", mul(prop("D1", "cost"), lit(3))))
        )
        assert interpreted == compiled
        assert compiled["cost"] == 6.0

    def test_whole_descriptor_copy(self, schema):
        interpreted, compiled = run_both(schema, block(copy_desc("D2", "D1")))
        assert interpreted == compiled
        assert compiled["num_records"] == 8.0

    def test_copy_then_override(self, schema):
        b = block(
            copy_desc("D2", "D1"),
            assign("D2", "tuple_order", lit(DONT_CARE)),
        )
        interpreted, compiled = run_both(schema, b)
        assert interpreted == compiled
        assert compiled["tuple_order"] is DONT_CARE

    def test_copy_does_not_alias(self, schema):
        env = make_env(schema)
        compile_block(block(copy_desc("D2", "D1")), default_helpers())(env)
        env.descriptors["D2"]["cost"] = 99.0
        assert env.descriptors["D1"]["cost"] == 2.0

    def test_helper_calls(self, schema):
        b = block(
            assign(
                "D2",
                "attributes",
                call("union", prop("D1", "attributes"), lit(("c",))),
            )
        )
        interpreted, compiled = run_both(schema, b)
        assert interpreted == compiled
        assert compiled["attributes"] == ("a", "b", "c")

    def test_contextual_helper_receives_context(self, schema):
        helpers = default_helpers()
        helpers.register("ctx_probe", lambda ctx, x: (ctx, x), pure=False)
        env = make_env(schema, ctx="THE_CONTEXT")
        b = block(assign("D2", "attributes", call("ctx_probe", lit(("a",)))))
        compile_block(b, helpers)(env)
        assert env.descriptors["D2"]["attributes"] == ("THE_CONTEXT", ("a",))

    def test_arithmetic_matrix(self, schema):
        b = block(
            assign(
                "D2",
                "cost",
                add(
                    sub(prop("D1", "num_records"), lit(2)),
                    div(mul(prop("D1", "cost"), lit(4)), lit(2)),
                ),
            )
        )
        interpreted, compiled = run_both(schema, b)
        assert interpreted == compiled
        assert compiled["cost"] == 10.0

    def test_empty_block_is_noop(self, schema):
        env = make_env(schema)
        before = env.descriptors["D2"].as_dict()
        compile_block(ActionBlock(), default_helpers())(env)
        assert env.descriptors["D2"].as_dict() == before

    def test_py_action_falls_back_to_interpreter(self, schema):
        marker = []
        b = ActionBlock([PyAction(lambda e: marker.append(1))])
        fn = compile_block(b, default_helpers())
        fn(make_env(schema))
        assert marker == [1]

    def test_predicate_literal_bound_as_global(self, schema):
        from repro.catalog.predicates import equals_const

        pred = equals_const("a", 1)
        b = block(assign("D2", "attributes", lit((pred,))))
        env = make_env(schema)
        compile_block(b, default_helpers())(env)
        assert env.descriptors["D2"]["attributes"] == (pred,)


class TestCompiledTests:
    def test_trivially_true(self, schema):
        fn = compile_test(TRUE_TEST, default_helpers())
        assert fn(make_env(schema)) is True

    def test_comparison(self, schema):
        fn = compile_test(
            make_test(eq(prop("D1", "cost"), lit(2.0))), default_helpers()
        )
        assert fn(make_env(schema))

    def test_dont_care_comparison(self, schema):
        fn = compile_test(
            make_test(ne(prop("D1", "tuple_order"), lit(DONT_CARE))),
            default_helpers(),
        )
        assert fn(make_env(schema))

    def test_boolean_connectives(self, schema):
        expr = both(
            either(lit(False), eq(prop("D1", "cost"), lit(2.0))),
            neg(lit(False)),
        )
        fn = compile_test(make_test(expr), default_helpers())
        assert fn(make_env(schema))

    def test_short_circuit_and(self, schema):
        # right operand would raise if evaluated
        expr = both(lit(False), call("no_such_helper"))
        helpers = default_helpers()
        helpers.register("no_such_helper", lambda: 1 / 0)
        fn = compile_test(make_test(expr), helpers)
        assert fn(make_env(schema)) is False

    def test_py_test_falls_back(self, schema):
        fn = compile_test(PyTest(lambda e: True), default_helpers())
        assert fn(make_env(schema))

    def test_interpreted_and_compiled_agree(self, schema):
        cases = [
            eq(prop("D1", "cost"), lit(2.0)),
            ne(prop("D1", "cost"), lit(3.0)),
            both(lit(True), eq(prop("D1", "tuple_order"), lit("a"))),
            either(lit(False), lit(False)),
            call("contains", prop("D1", "attributes"), lit("b")),
        ]
        for expr in cases:
            t = make_test(expr)
            env1, env2 = make_env(schema), make_env(schema)
            assert t.evaluate(env1) == compile_test(t, default_helpers())(env2)

"""Unit tests for the memo table (equivalence classes)."""

import pytest

from repro.algebra.descriptors import Descriptor
from repro.algebra.expressions import Expression, StoredFileRef
from repro.algebra.operations import Operator
from repro.algebra.properties import DescriptorSchema, PropertyDef, PropertyType
from repro.errors import SearchError
from repro.volcano.memo import Memo, MExpr

SCHEMA = DescriptorSchema(
    [
        PropertyDef("join_predicate", PropertyType.PREDICATE),
        PropertyDef("num_records", PropertyType.FLOAT),
        PropertyDef("tuple_order", PropertyType.ORDER),
        PropertyDef("cost", PropertyType.COST),
    ]
)
ARGS = ("join_predicate", "num_records")
RET = Operator.on_file("RET")
JOIN = Operator.streams("JOIN", 2)


def d(**values):
    return Descriptor(SCHEMA, values)


def make_memo():
    return Memo(ARGS)


class TestInsertion:
    def test_file_leaves_interned(self):
        memo = make_memo()
        a = memo.add_file(StoredFileRef("R1", d()))
        b = memo.add_file(StoredFileRef("R1", d()))
        assert a is b
        assert memo.group_count == 1

    def test_distinct_files_distinct_groups(self):
        memo = make_memo()
        memo.add_file(StoredFileRef("R1", d()))
        memo.add_file(StoredFileRef("R2", d()))
        assert memo.group_count == 2

    def test_new_mexpr_gets_new_group(self):
        memo = make_memo()
        leaf = memo.add_file(StoredFileRef("R1", d()))
        mexpr, created = memo.insert(
            MExpr("RET", (leaf.group_id,), d(num_records=5.0))
        )
        assert created
        assert memo.group_count == 2
        assert mexpr.group_id == 1

    def test_duplicate_mexpr_deduplicated(self):
        memo = make_memo()
        leaf = memo.add_file(StoredFileRef("R1", d()))
        first, _ = memo.insert(MExpr("RET", (leaf.group_id,), d(num_records=5.0)))
        second, created = memo.insert(
            MExpr("RET", (leaf.group_id,), d(num_records=5.0))
        )
        assert not created
        assert second is first

    def test_different_argument_property_not_duplicate(self):
        memo = make_memo()
        leaf = memo.add_file(StoredFileRef("R1", d()))
        memo.insert(MExpr("RET", (leaf.group_id,), d(num_records=5.0)))
        _, created = memo.insert(MExpr("RET", (leaf.group_id,), d(num_records=6.0)))
        assert created

    def test_non_argument_property_ignored_for_identity(self):
        memo = make_memo()
        leaf = memo.add_file(StoredFileRef("R1", d()))
        memo.insert(MExpr("RET", (leaf.group_id,), d(num_records=5.0, cost=1.0)))
        _, created = memo.insert(
            MExpr("RET", (leaf.group_id,), d(num_records=5.0, cost=99.0))
        )
        assert not created

    def test_insert_into_existing_group(self):
        memo = make_memo()
        leaf = memo.add_file(StoredFileRef("R1", d()))
        first, _ = memo.insert(MExpr("RET", (leaf.group_id,), d(num_records=5.0)))
        group = memo.group(first.group_id)
        memo.insert(
            MExpr("RET", (leaf.group_id,), d(num_records=6.0)),
            group_id=group.gid,
        )
        assert len(group) == 2

    def test_group_lookup_error(self):
        with pytest.raises(SearchError):
            make_memo().group(5)


class TestFromExpression:
    def tree(self):
        r1 = Expression(RET, (StoredFileRef("R1", d()),), d(num_records=10.0))
        r2 = Expression(RET, (StoredFileRef("R2", d()),), d(num_records=20.0))
        return Expression(JOIN, (r1, r2), d(num_records=30.0))

    def test_group_structure(self):
        memo = make_memo()
        root = memo.from_expression(self.tree())
        # R1, R2, RET(R1), RET(R2), JOIN = 5 groups
        assert memo.group_count == 5
        assert len(root) == 1
        assert root.mexprs[0].op_name == "JOIN"

    def test_logical_descriptor_from_first_member(self):
        memo = make_memo()
        root = memo.from_expression(self.tree())
        assert root.logical_descriptor["num_records"] == 30.0

    def test_shared_subtrees_share_groups(self):
        memo = make_memo()
        r1a = Expression(RET, (StoredFileRef("R1", d()),), d(num_records=10.0))
        r1b = Expression(RET, (StoredFileRef("R1", d()),), d(num_records=10.0))
        tree = Expression(JOIN, (r1a, r1b), d(num_records=7.0))
        memo.from_expression(tree)
        # R1, RET(R1) shared, JOIN: 3 groups
        assert memo.group_count == 3

    def test_stats(self):
        memo = make_memo()
        memo.from_expression(self.tree())
        assert memo.stats() == {"groups": 5, "mexprs": 5}

    def test_str_rendering(self):
        memo = make_memo()
        memo.from_expression(self.tree())
        text = str(memo)
        assert "g0:" in text
        assert "JOIN" in text

    def test_file_group_flag(self):
        memo = make_memo()
        root = memo.from_expression(self.tree())
        assert not root.is_file_group
        assert memo.group(0).is_file_group

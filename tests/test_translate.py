"""Unit tests for the P2V translator (Prairie → Volcano)."""

import pytest

from repro.algebra.descriptors import Descriptor
from repro.algebra.properties import DONT_CARE
from repro.prairie.actions import ActionEnv
from repro.prairie.translate import translate, translate_to_volcano


class TestRelationalTranslation:
    def test_rule_counts(self, relational_prairie, relational_translation):
        volcano = relational_translation.volcano
        # 2 T-rules -> 2 trans_rules; 6 I-rules -> 4 impl + 1 enforcer + 1 Null
        assert len(volcano.trans_rules) == 2
        assert len(volcano.impl_rules) == 4
        assert len(volcano.enforcers) == 1
        assert len(relational_prairie.i_rules) == 6

    def test_enforcer_operator_removed(self, relational_translation):
        volcano = relational_translation.volcano
        assert "SORT" not in volcano.operators
        assert set(volcano.operators) == {"RET", "JOIN"}

    def test_null_algorithm_removed(self, relational_translation):
        assert "Null" not in relational_translation.volcano.algorithms

    def test_enforcer_is_merge_sort(self, relational_translation):
        enforcer = relational_translation.volcano.enforcers[0]
        assert enforcer.algorithm.name == "Merge_sort"
        assert enforcer.operator == "SORT"

    def test_provenance(self, relational_translation):
        assert relational_translation.volcano.provenance == "p2v-generated"

    def test_physical_properties(self, relational_translation):
        assert relational_translation.volcano.physical_properties == ("tuple_order",)

    def test_cost_property(self, relational_translation):
        assert relational_translation.volcano.cost_property == "cost"

    def test_argument_properties_exclude_physical_and_cost(
        self, relational_translation
    ):
        args = relational_translation.volcano.argument_properties
        assert "tuple_order" not in args
        assert "cost" not in args
        assert "join_predicate" in args

    def test_convenience_wrapper(self, relational_prairie):
        volcano = translate_to_volcano(relational_prairie)
        assert volcano.counts()["impl_rules"] == 4

    def test_summary(self, relational_translation):
        summary = relational_translation.summary()
        assert summary["impl_rules"] == 4
        assert summary["enforcers"] == 1
        assert summary["null_i_rules"] == 1


class TestOodbTranslation:
    """The paper's Section 4.2 rule-count arithmetic, exactly."""

    def test_paper_rule_counts(self, oodb_prairie, oodb_translation):
        assert len(oodb_prairie.t_rules) == 22
        assert len(oodb_prairie.i_rules) == 11
        assert len(oodb_translation.volcano.trans_rules) == 17
        assert len(oodb_translation.volcano.impl_rules) == 9
        assert len(oodb_translation.volcano.enforcers) == 1

    def test_five_sort_introduction_rules_deleted(self, oodb_translation):
        assert oodb_translation.report.deleted_t_rule_count == 5
        assert len(oodb_translation.report.deleted_identity_rules) == 5

    def test_project_constraints(self, oodb_prairie, oodb_translation):
        # PROJECT: no trans_rules, exactly one impl_rule (paper fn. 9).
        volcano = oodb_translation.volcano
        project_trans = [
            r
            for r in volcano.trans_rules
            if "PROJECT" in str(r.lhs) or "PROJECT" in str(r.rhs)
        ]
        assert project_trans == []
        project_impl = volcano.impl_rules_for("PROJECT")
        assert len(project_impl) == 1

    def test_unnest_constraints(self, oodb_translation):
        # UNNEST: exactly one trans_rule and one impl_rule (paper fn. 9).
        volcano = oodb_translation.volcano
        unnest_trans = [
            r
            for r in volcano.trans_rules
            if "UNNEST" in str(r.lhs) or "UNNEST" in str(r.rhs)
        ]
        assert len(unnest_trans) == 1
        assert len(volcano.impl_rules_for("UNNEST")) == 1

    def test_index_scan_in_two_impl_rules(self, oodb_translation):
        # Per-rule property mapping: one algorithm, two impl_rules.
        volcano = oodb_translation.volcano
        index_rules = [
            r for r in volcano.impl_rules if r.algorithm.name == "Index_scan"
        ]
        assert len(index_rules) == 2

    def test_eight_algorithms_plus_enforcer(self, oodb_translation):
        volcano = oodb_translation.volcano
        assert len(volcano.algorithms) == 9  # 8 + Merge_sort (the enforcer)
        assert "Null" not in volcano.algorithms

    def test_validation_passes(self, oodb_translation):
        oodb_translation.volcano.validate()


class TestEnforcerlessRuleSets:
    """A rule set with no Null rules translates to zero enforcers."""

    def build(self):
        from repro.algebra.operations import Algorithm, Operator
        from repro.optimizers.helpers import domain_helpers
        from repro.optimizers.schema import make_schema
        from repro.prairie.build import assign, block, call, copy_desc, node, prop, var
        from repro.prairie.rules import IRule
        from repro.prairie.ruleset import PrairieRuleSet

        ruleset = PrairieRuleSet("plain", make_schema(), helpers=domain_helpers())
        ruleset.declare_operator(Operator.on_file("RET"))
        ruleset.declare_algorithm(Algorithm.on_file("File_scan"))
        ruleset.add_irule(
            IRule(
                name="scan",
                lhs=node("RET", var("F", "DF"), desc="D1"),
                rhs=node("File_scan", var("F"), desc="D2"),
                pre_opt=block(copy_desc("D2", "D1")),
                post_opt=block(
                    assign("D2", "cost", call("scan_cost", prop("D1", "file_name")))
                ),
            )
        )
        return ruleset

    def test_no_enforcers_generated(self):
        result = translate(self.build())
        assert result.volcano.enforcers == []
        assert result.analysis.enforcer_operators == ()

    def test_no_physical_properties_without_pre_opt_writes(self):
        result = translate(self.build())
        # the only pre-opt statement is a whole-descriptor copy
        assert result.analysis.physical_properties == ()
        # ⇒ property vectors are empty; optimization still works
        from repro.volcano.properties import dont_care_vector

        assert dont_care_vector(result.volcano.physical_properties) == ()

    def test_optimizes_with_empty_vector(self):
        from repro.catalog.schema import Catalog, StoredFileInfo
        from repro.volcano.search import VolcanoOptimizer
        from repro.workloads.trees import TreeBuilder

        result = translate(self.build())
        catalog = Catalog([StoredFileInfo("F", ("a",), 100, 100)])
        builder = TreeBuilder(result.volcano.schema, catalog)
        plan = VolcanoOptimizer(result.volcano, catalog).optimize(builder.ret("F"))
        assert plan.plan.op.name == "File_scan"


class TestGeneratedCallables:
    """The four generated support functions behave per Table 4(b)."""

    def _nl_rule(self, relational_translation):
        (rule,) = [
            r
            for r in relational_translation.volcano.impl_rules
            if r.name == "join_nested_loops"
        ]
        return rule

    def _env(self, relational_translation, rule, order="a1"):
        schema = relational_translation.volcano.schema
        op = Descriptor(
            schema,
            {"num_records": 100.0, "tuple_order": order, "attributes": ("a1",)},
        )
        d1 = Descriptor(schema, {"num_records": 10.0, "attributes": ("a1",)})
        d2 = Descriptor(schema, {"num_records": 5.0})
        descriptors = {
            rule.op_desc_name: op,
            "D1": d1,
            "D2": d2,
        }
        for name in rule.rhs_descriptor_names:
            descriptors[name] = Descriptor(schema)
        return ActionEnv(descriptors, relational_translation.volcano.helpers)

    def test_do_any_good_runs_pre_opt(self, relational_translation):
        rule = self._nl_rule(relational_translation)
        env = self._env(relational_translation, rule)
        assert rule.cond_code(env)
        assert rule.do_any_good(env)
        # pre-opt copied the op descriptor into the algorithm descriptor
        assert env.descriptors["D5"]["num_records"] == 100.0
        # and propagated the required order onto the outer input
        assert env.descriptors["D4"]["tuple_order"] == "a1"

    def test_get_input_pv(self, relational_translation):
        rule = self._nl_rule(relational_translation)
        env = self._env(relational_translation, rule)
        rule.do_any_good(env)
        assert rule.get_input_pv(env, 0) == ("a1",)
        assert rule.get_input_pv(env, 1) == (DONT_CARE,)

    def test_derive_phy_prop(self, relational_translation):
        rule = self._nl_rule(relational_translation)
        env = self._env(relational_translation, rule)
        rule.do_any_good(env)
        assert rule.derive_phy_prop(env) == ("a1",)

    def test_cost_runs_post_opt(self, relational_translation):
        rule = self._nl_rule(relational_translation)
        env = self._env(relational_translation, rule)
        rule.do_any_good(env)
        # engine writes the optimized input costs before post-opt
        env.descriptors["D4"]["cost"] = 3.0
        env.descriptors["D2"]["cost"] = 2.0
        # D4.num_records came from D1 via the pre-opt copy (10.0)
        assert rule.cost(env) == pytest.approx(3.0 + 10.0 * 2.0)

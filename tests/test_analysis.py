"""Unit tests for P2V's classification pass (paper Section 3.1)."""

import pytest

from repro.algebra.operations import Algorithm, Operator
from repro.algebra.properties import DescriptorSchema, PropertyDef, PropertyType
from repro.errors import TranslationError
from repro.prairie.analysis import analyse
from repro.prairie.build import assign, block, copy_desc, lit, node, prop, var
from repro.prairie.rules import IRule
from repro.prairie.ruleset import PrairieRuleSet


def schema(extra_cost: bool = False, no_cost: bool = False):
    props = [
        PropertyDef("tuple_order", PropertyType.ORDER),
        PropertyDef("compression", PropertyType.STRING),
        PropertyDef("join_predicate", PropertyType.PREDICATE),
        PropertyDef("num_records", PropertyType.FLOAT),
    ]
    if not no_cost:
        props.append(PropertyDef("cost", PropertyType.COST))
    if extra_cost:
        props.append(PropertyDef("cost2", PropertyType.COST))
    return DescriptorSchema(props)


def make_ruleset(s=None):
    rs = PrairieRuleSet("t", s or schema())
    rs.declare_operator(Operator.streams("SORT", 1))
    rs.declare_operator(Operator.streams("COMPRESS", 1))
    rs.declare_algorithm(Algorithm.streams("Merge_sort", 1))
    rs.declare_algorithm(Algorithm.streams("Zip", 1))
    rs.add_irule(
        IRule(
            name="sort_ms",
            lhs=node("SORT", var("S1", "D1"), desc="D2"),
            rhs=node("Merge_sort", var("S1"), desc="D3"),
            pre_opt=block(copy_desc("D3", "D2")),
        )
    )
    rs.add_irule(
        IRule(
            name="sort_null",
            lhs=node("SORT", var("S1", "D1"), desc="D2"),
            rhs=node("Null", var("S1", "D3"), desc="D4"),
            pre_opt=block(
                copy_desc("D4", "D2"),
                copy_desc("D3", "D1"),
                assign("D3", "tuple_order", prop("D2", "tuple_order")),
            ),
        )
    )
    rs.add_irule(
        IRule(
            name="compress_zip",
            lhs=node("COMPRESS", var("S1", "D1"), desc="D2"),
            rhs=node("Zip", var("S1", "D3"), desc="D4"),
            pre_opt=block(
                copy_desc("D4", "D2"),
                assign("D3", "compression", lit("none")),
            ),
            post_opt=block(assign("D4", "cost", prop("D3", "cost"))),
        )
    )
    return rs


class TestClassification:
    def test_cost_property_from_type(self):
        analysis = analyse(make_ruleset())
        assert analysis.cost_property == "cost"
        assert analysis.cost_properties == ("cost",)

    def test_physical_from_pre_opt_writes(self):
        analysis = analyse(make_ruleset())
        assert set(analysis.physical_properties) == {"tuple_order", "compression"}

    def test_physical_preserves_schema_order(self):
        analysis = analyse(make_ruleset())
        assert analysis.physical_properties == ("tuple_order", "compression")

    def test_argument_is_the_rest(self):
        analysis = analyse(make_ruleset())
        assert analysis.argument_properties == ("join_predicate", "num_records")

    def test_whole_descriptor_copies_are_not_physical_writes(self):
        # copy_desc("D3", "D2") alone must not classify anything physical.
        s = schema()
        rs = PrairieRuleSet("t", s)
        rs.declare_operator(Operator.streams("SORT", 1))
        rs.declare_algorithm(Algorithm.streams("Merge_sort", 1))
        rs.add_irule(
            IRule(
                name="sort_ms",
                lhs=node("SORT", var("S1", "D1"), desc="D2"),
                rhs=node("Merge_sort", var("S1"), desc="D3"),
                pre_opt=block(copy_desc("D3", "D2")),
            )
        )
        analysis = analyse(rs)
        assert analysis.physical_properties == ()

    def test_post_opt_writes_do_not_classify_physical(self):
        analysis = analyse(make_ruleset())
        # compress_zip assigns D4.cost in post-opt only; cost is COST-typed
        # anyway, but no other post-opt-only property becomes physical.
        assert "cost" not in analysis.physical_properties

    def test_i_rules_override(self):
        rs = make_ruleset()
        analysis = analyse(rs, i_rules=[])
        assert analysis.physical_properties == ()

    def test_missing_cost_property_rejected(self):
        rs = make_ruleset(schema(no_cost=True))
        with pytest.raises(TranslationError):
            analyse(rs)

    def test_multiple_cost_properties_rejected(self):
        rs = make_ruleset(schema(extra_cost=True))
        with pytest.raises(TranslationError):
            analyse(rs)


class TestEnforcerDetection:
    def test_null_rule_marks_enforcer_operator(self):
        analysis = analyse(make_ruleset())
        assert analysis.enforcer_operators == ("SORT",)

    def test_enforcer_algorithms(self):
        analysis = analyse(make_ruleset())
        assert analysis.enforcer_algorithms == ("Merge_sort",)

    def test_operator_without_null_not_enforcer(self):
        analysis = analyse(make_ruleset())
        assert "COMPRESS" not in analysis.enforcer_operators


class TestReporting:
    def test_classify(self):
        analysis = analyse(make_ruleset())
        assert analysis.classify("cost") == "cost"
        assert analysis.classify("tuple_order") == "physical"
        assert analysis.classify("join_predicate") == "argument"

    def test_summary_keys(self):
        summary = analyse(make_ruleset()).summary()
        assert set(summary) == {
            "cost",
            "physical",
            "argument",
            "enforcer_operators",
            "enforcer_algorithms",
        }

"""Behaviour tests for the centralized relational optimizer (Table 1)."""

import pytest

from repro.catalog.predicates import equals_attr, equals_const
from repro.volcano.search import VolcanoOptimizer
from repro.workloads.catalogs import make_experiment_catalog
from repro.workloads.expressions import build_e1
from repro.workloads.trees import TreeBuilder


class TestRuleSetShape:
    def test_table1_operators(self, relational_prairie):
        assert set(relational_prairie.operators) == {"RET", "JOIN", "SORT"}

    def test_table1_algorithms(self, relational_prairie):
        assert set(relational_prairie.algorithms) == {
            "File_scan",
            "Index_scan",
            "Nested_loops",
            "Merge_join",
            "Merge_sort",
            "Null",
        }

    def test_table1_implementations(self, relational_prairie):
        by_op = {
            op: sorted(a.name for a in relational_prairie.algorithms_for(op))
            for op in relational_prairie.operators
        }
        assert by_op["RET"] == ["File_scan", "Index_scan"]
        assert by_op["JOIN"] == ["Merge_join", "Nested_loops"]
        assert by_op["SORT"] == ["Merge_sort", "Null"]

    def test_validates(self, relational_prairie):
        relational_prairie.validate()

    def test_sort_is_the_only_enforcer_operator(self, relational_prairie):
        assert relational_prairie.null_ruled_operators() == ("SORT",)


class TestPlanChoices:
    @pytest.fixture()
    def setup(self, schema, relational_volcano_generated):
        catalog = make_experiment_catalog(
            4, with_indices=False, with_targets=False, fixed_cardinality=2000
        )
        builder = TreeBuilder(schema, catalog)
        optimizer = VolcanoOptimizer(relational_volcano_generated, catalog)
        return catalog, builder, optimizer

    def test_join_produces_valid_algorithms(self, setup):
        _catalog, builder, optimizer = setup
        result = optimizer.optimize(build_e1(builder, 3))
        from repro.algebra.expressions import interior_nodes

        names = {n.op.name for n in interior_nodes(result.plan)}
        assert names <= {
            "File_scan",
            "Index_scan",
            "Nested_loops",
            "Merge_join",
            "Merge_sort",
        }

    def test_merge_join_inputs_sorted(self, setup):
        """Every Merge_join node's inputs deliver the join attributes' order."""
        _catalog, builder, optimizer = setup
        result = optimizer.optimize(build_e1(builder, 3))
        from repro.algebra.expressions import interior_nodes
        from repro.algebra.properties import DONT_CARE

        for node in interior_nodes(result.plan):
            if node.op.name != "Merge_join":
                continue
            for child in node.inputs:
                order = child.descriptor["tuple_order"]
                assert order is not DONT_CARE, "merge join input not sorted"
                assert order in child.descriptor["attributes"]

    def test_selection_pushes_cost_down(self, schema, relational_volcano_generated):
        catalog = make_experiment_catalog(
            2, with_indices=False, with_targets=False, fixed_cardinality=2000
        )
        builder = TreeBuilder(schema, catalog)
        optimizer = VolcanoOptimizer(relational_volcano_generated, catalog)
        unfiltered = optimizer.optimize(
            builder.join(
                builder.ret("C1"), builder.ret("C2"), equals_attr("b1", "b2")
            )
        )
        filtered = optimizer.optimize(
            builder.join(
                builder.ret("C1", equals_const("a1", 1)),
                builder.ret("C2"),
                equals_attr("b1", "b2"),
            )
        )
        assert filtered.cost < unfiltered.cost


class TestIndexSensitivity:
    """The relational optimizer's RET algorithms *do* use indices."""

    def run(self, schema, ruleset, with_indices):
        catalog = make_experiment_catalog(
            2,
            with_indices=with_indices,
            with_targets=False,
            fixed_cardinality=2000,
        )
        builder = TreeBuilder(schema, catalog)
        tree = builder.join(
            builder.ret("C1", equals_const("a1", 1)),
            builder.ret("C2", equals_const("a2", 2)),
            equals_attr("b1", "b2"),
        )
        return VolcanoOptimizer(ruleset, catalog).optimize(tree)

    def test_indices_reduce_cost(self, schema, relational_volcano_generated):
        without = self.run(schema, relational_volcano_generated, False)
        with_idx = self.run(schema, relational_volcano_generated, True)
        assert with_idx.cost < without.cost

    def test_indices_do_not_change_search_space(
        self, schema, relational_volcano_generated
    ):
        without = self.run(schema, relational_volcano_generated, False)
        with_idx = self.run(schema, relational_volcano_generated, True)
        assert without.equivalence_classes == with_idx.equivalence_classes

"""Failure injection: misbehaving rules and helpers must fail loudly.

The engine executes user-supplied rule code; this module verifies that
failures surface as the right exception types with useful context,
rather than silently corrupting the search.
"""

import pytest

from repro.algebra.operations import Algorithm, Operator
from repro.algebra.properties import DONT_CARE
from repro.catalog.schema import Catalog, StoredFileInfo
from repro.errors import ActionError, TranslationError
from repro.optimizers.helpers import domain_helpers
from repro.prairie.build import (
    assign,
    block,
    call,
    copy_desc,
    lit,
    node,
    prop,
    var,
)
from repro.prairie.rules import IRule, TRule
from repro.prairie.ruleset import PrairieRuleSet
from repro.prairie.translate import translate
from repro.optimizers.schema import make_schema
from repro.volcano.search import VolcanoOptimizer
from repro.workloads.trees import TreeBuilder


def minimal_ruleset(post_opt_cost=None, helper_registry=None, test_expr=None):
    """A RET-only rule set whose scan rule can be sabotaged."""
    ruleset = PrairieRuleSet(
        "inject", make_schema(), helpers=helper_registry or domain_helpers()
    )
    ruleset.declare_operator(Operator.on_file("RET"))
    ruleset.declare_algorithm(Algorithm.on_file("File_scan"))
    kwargs = {}
    if test_expr is not None:
        kwargs["test"] = test_expr
    ruleset.add_irule(
        IRule(
            name="ret_file_scan",
            lhs=node("RET", var("F", "DF"), desc="D1"),
            rhs=node("File_scan", var("F"), desc="D2"),
            pre_opt=block(copy_desc("D2", "D1")),
            post_opt=block(
                post_opt_cost
                if post_opt_cost is not None
                else assign("D2", "cost", call("scan_cost", prop("D1", "file_name")))
            ),
            **kwargs,
        )
    )
    return ruleset


@pytest.fixture()
def catalog():
    return Catalog([StoredFileInfo("F", ("a",), 100, 100)])


def optimize(ruleset, catalog):
    volcano = translate(ruleset).volcano
    builder = TreeBuilder(volcano.schema, catalog)
    return VolcanoOptimizer(volcano, catalog).optimize(builder.ret("F"))


class TestRaisingHelpers:
    def test_helper_exception_wrapped_in_action_error(self, catalog):
        helpers = domain_helpers()
        helpers.register("explode", lambda: 1 / 0)
        ruleset = minimal_ruleset(
            post_opt_cost=assign("D2", "cost", call("explode")),
            helper_registry=helpers,
        )
        with pytest.raises(ZeroDivisionError):
            # compiled rules call the helper directly; the failure must
            # propagate, not be swallowed into a bogus plan
            optimize(ruleset, catalog)

    def test_interpreted_helper_exception_wrapped(self, catalog):
        """The tree-walking interpreter wraps helper errors as ActionError."""
        from repro.algebra.descriptors import Descriptor
        from repro.prairie.actions import ActionEnv, Call

        helpers = domain_helpers()
        helpers.register("explode", lambda: 1 / 0)
        env = ActionEnv({}, helpers)
        with pytest.raises(ActionError, match="explode"):
            env.eval(Call("explode", ()))


class TestMissingCost:
    def test_post_opt_without_cost_assignment_rejected(self, catalog):
        # a post-opt that assigns something else but never the cost
        ruleset = minimal_ruleset(
            post_opt_cost=assign("D2", "num_records", lit(1.0))
        )
        with pytest.raises(TranslationError, match="numeric 'cost'"):
            optimize(ruleset, catalog)


class TestMisbehavedTests:
    def test_rule_test_returning_nonbool_is_coerced(self, catalog):
        from repro.prairie.build import test as make_test

        # a "test" that evaluates to a number: truthiness applies
        ruleset = minimal_ruleset(test_expr=make_test(lit(1)))
        result = optimize(ruleset, catalog)
        assert result.plan.op.name == "File_scan"

    def test_rule_test_false_means_no_plan(self, catalog):
        from repro.errors import NoPlanFoundError
        from repro.prairie.build import test as make_test

        ruleset = minimal_ruleset(test_expr=make_test(lit(False)))
        with pytest.raises(NoPlanFoundError):
            optimize(ruleset, catalog)


class TestTransRuleFailures:
    def test_trans_rule_action_error_propagates(self, catalog):
        """A trans rule reading an unset DONT_CARE in arithmetic fails
        loudly (compiled code raises TypeError on DONT_CARE arithmetic)."""
        ruleset = minimal_ruleset()
        ruleset.declare_operator(Operator.streams("DUP", 1))
        ruleset.declare_algorithm(Algorithm.streams("Copy", 1))
        ruleset.add_trule(
            TRule(
                name="broken",
                lhs=node("DUP", var("S1", "DA"), desc="D1"),
                rhs=node("DUP", node("DUP", var("S1"), desc="D2"), desc="D3"),
                post_test=block(
                    # cost is DONT_CARE on a logical descriptor: arithmetic
                    # on it must raise, not produce garbage
                    assign("D2", "num_records", prop("DA", "cost")),
                    assign(
                        "D3",
                        "num_records",
                        call("round_est", prop("DA", "cost")),
                    ),
                ),
            )
        )
        ruleset.add_irule(
            IRule(
                name="dup_copy",
                lhs=node("DUP", var("S1", "D1"), desc="D2"),
                rhs=node("Copy", var("S1"), desc="D3"),
                pre_opt=block(copy_desc("D3", "D2")),
                post_opt=block(assign("D3", "cost", prop("D1", "cost"))),
            )
        )
        volcano = translate(ruleset).volcano
        builder = TreeBuilder(volcano.schema, catalog)
        from repro.algebra.expressions import Expression
        from repro.algebra.operations import Operator as Op

        tree = Expression(
            Op.streams("DUP", 1), (builder.ret("F"),), builder.ret("F").descriptor.copy()
        )
        with pytest.raises(Exception):  # noqa: B017 - any loud failure is correct
            VolcanoOptimizer(volcano, catalog).optimize(tree)


class TestEngineEdgeCases:
    def test_file_group_with_requirement_uses_enforcer_path(
        self, schema, relational_volcano_generated
    ):
        """A bare stored file asked for an order: only the enforcer can
        deliver (sorting the raw file stream)."""
        from repro.workloads.catalogs import make_experiment_catalog

        catalog = make_experiment_catalog(1, with_targets=False, instance=0)
        builder = TreeBuilder(schema, catalog)
        leaf = builder.file("C1")
        result = VolcanoOptimizer(relational_volcano_generated, catalog).optimize(
            leaf, required=("a1",)
        )
        assert result.plan.op.name == "Merge_sort"

    def test_no_plan_cached_and_rechecked(
        self, schema, relational_volcano_generated
    ):
        """A failed requirement is cached (NO_PLAN) and the second ask
        fails identically instead of corrupting the cache."""
        from repro.errors import NoPlanFoundError
        from repro.workloads.catalogs import make_experiment_catalog

        catalog = make_experiment_catalog(1, with_targets=False, instance=0)
        builder = TreeBuilder(schema, catalog)
        optimizer = VolcanoOptimizer(relational_volcano_generated, catalog)
        for _ in range(2):
            with pytest.raises(NoPlanFoundError):
                optimizer.optimize(builder.ret("C1"), required=("nope",))

    def test_mixed_requirements_independent(
        self, schema, relational_volcano_generated
    ):
        """Winner caches are per-vector: a failed vector does not poison
        a satisfiable one on the same tree."""
        from repro.errors import NoPlanFoundError
        from repro.workloads.catalogs import make_experiment_catalog

        catalog = make_experiment_catalog(1, with_targets=False, instance=0)
        builder = TreeBuilder(schema, catalog)
        optimizer = VolcanoOptimizer(relational_volcano_generated, catalog)
        with pytest.raises(NoPlanFoundError):
            optimizer.optimize(builder.ret("C1"), required=("nope",))
        good = optimizer.optimize(builder.ret("C1"), required=("a1",))
        assert good.plan.descriptor["tuple_order"] == "a1"

"""Unit tests for rule patterns (shared by Prairie and Volcano)."""

import pytest

from repro.algebra.patterns import (
    PatternNode,
    PatternVar,
    descriptor_names,
    pattern_depth,
    pattern_nodes,
    pattern_operations,
    pattern_vars,
    rename_operation,
    validate_pattern,
    walk_pattern,
)
from repro.errors import RuleError


def assoc_lhs():
    return PatternNode(
        "JOIN",
        (
            PatternNode("JOIN", (PatternVar("S1", "DA"), PatternVar("S2", "DB")), "D1"),
            PatternVar("S3", "DC"),
        ),
        "D2",
    )


class TestAccessors:
    def test_pattern_vars_in_order(self):
        assert [v.var for v in pattern_vars(assoc_lhs())] == ["S1", "S2", "S3"]

    def test_pattern_nodes_preorder(self):
        assert [n.op_name for n in pattern_nodes(assoc_lhs())] == ["JOIN", "JOIN"]

    def test_pattern_operations(self):
        assert pattern_operations(assoc_lhs()) == ("JOIN", "JOIN")

    def test_descriptor_names_include_vars_and_nodes(self):
        assert set(descriptor_names(assoc_lhs())) == {"D2", "D1", "DA", "DB", "DC"}

    def test_walk_counts(self):
        assert len(list(walk_pattern(assoc_lhs()))) == 5

    def test_pattern_depth(self):
        assert pattern_depth(PatternVar("S")) == 0
        assert pattern_depth(PatternNode("RET", (PatternVar("F"),), "D1")) == 1
        assert pattern_depth(assoc_lhs()) == 2

    def test_str_rendering(self):
        node = PatternNode("RET", (PatternVar("F", "DF"),), "D1")
        assert str(node) == "RET(?F:DF):D1"
        assert str(PatternVar("S")) == "?S"


class TestValidation:
    def test_valid_pattern_passes(self):
        validate_pattern(assoc_lhs())

    def test_root_variable_rejected(self):
        with pytest.raises(RuleError):
            validate_pattern(PatternVar("S"))

    def test_duplicate_variable_rejected(self):
        bad = PatternNode("JOIN", (PatternVar("S"), PatternVar("S")), "D1")
        with pytest.raises(RuleError):
            validate_pattern(bad)

    def test_duplicate_descriptor_rejected(self):
        bad = PatternNode(
            "JOIN", (PatternVar("S1", "D1"), PatternVar("S2", "D1")), "D2"
        )
        with pytest.raises(RuleError):
            validate_pattern(bad)


class TestRename:
    def test_rename_operation(self):
        renamed = rename_operation(assoc_lhs(), "JOIN", "JOPR")
        assert pattern_operations(renamed) == ("JOPR", "JOPR")

    def test_rename_preserves_descriptors(self):
        renamed = rename_operation(assoc_lhs(), "JOIN", "JOPR")
        assert descriptor_names(renamed) == descriptor_names(assoc_lhs())

    def test_rename_missing_is_identity(self):
        renamed = rename_operation(assoc_lhs(), "NOPE", "X")
        assert renamed == assoc_lhs()

    def test_rename_leaves_vars_untouched(self):
        var = PatternVar("S", "D")
        assert rename_operation(var, "JOIN", "JOPR") is var

"""Property-based cross-engine exactness.

Both search engines claim to be exact over the same rule set; hypothesis
hunts for a workload where they disagree (none should exist).  Also
checks that branch-and-bound pruning is actually active: far more
alternatives are considered than survive.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.volcano.bottomup import BottomUpOptimizer
from repro.volcano.search import SearchOptions, VolcanoOptimizer
from repro.workloads.catalogs import make_experiment_catalog
from repro.workloads.expressions import build_e1
from repro.workloads.trees import TreeBuilder


class TestEngineAgreementProperty:
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_joins=st.integers(1, 3),
        instance=st.integers(0, 20),
        topology=st.sampled_from(["linear", "star"]),
        with_indices=st.booleans(),
    )
    def test_top_down_equals_bottom_up(
        self, n_joins, instance, topology, with_indices
    ):
        from repro.bench.harness import build_optimizer_pair

        pair = build_optimizer_pair("relational")
        catalog = make_experiment_catalog(
            n_joins + 1,
            with_indices=with_indices,
            with_targets=False,
            instance=instance,
        )
        builder = TreeBuilder(pair.schema, catalog)
        tree = build_e1(builder, n_joins, topology=topology)
        top_down = VolcanoOptimizer(pair.generated, catalog).optimize(tree)
        bottom_up = BottomUpOptimizer(pair.generated, catalog).optimize(tree)
        assert abs(top_down.cost - bottom_up.cost) <= 1e-9 * max(
            1.0, top_down.cost
        )
        assert top_down.equivalence_classes == bottom_up.equivalence_classes

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(n_joins=st.integers(1, 3), instance=st.integers(0, 20))
    def test_heuristic_never_beats_exhaustive(self, n_joins, instance):
        from repro.bench.harness import build_optimizer_pair

        pair = build_optimizer_pair("oodb")
        catalog = make_experiment_catalog(
            n_joins + 1, with_targets=False, instance=instance
        )
        builder = TreeBuilder(pair.schema, catalog)
        tree = build_e1(builder, n_joins)
        exact = VolcanoOptimizer(pair.generated, catalog).optimize(tree)
        budgeted = VolcanoOptimizer(
            pair.generated, catalog, options=SearchOptions(max_mexprs=20)
        ).optimize(tree)
        assert budgeted.cost >= exact.cost - 1e-9


class TestPruningActive:
    def test_considered_exceeds_succeeded(self, schema, oodb_volcano_generated):
        catalog = make_experiment_catalog(5, with_targets=False, instance=0)
        builder = TreeBuilder(schema, catalog)
        tree = build_e1(builder, 4)
        result = VolcanoOptimizer(oodb_volcano_generated, catalog).optimize(tree)
        stats = result.stats
        # Many alternatives are considered; branch-and-bound plus
        # property-satisfaction checks cut a large fraction before costing.
        assert stats.impl_considered > stats.impl_succeeded
        assert stats.impl_succeeded > 0

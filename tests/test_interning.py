"""Tests for hash-consing of descriptors and operator trees.

Covers :mod:`repro.algebra.interning` at the unit level (canonical
descriptors, value-slot sharing, interned tree identity, memoized
fingerprints, pickle re-interning) and at the engine level: interning
must measurably shrink the memo's retained object count with **zero**
change to plans or costs.
"""

import pickle

import pytest

from repro.algebra.descriptors import Descriptor
from repro.algebra.interning import (
    DescriptorInterner,
    InternedLeaf,
    InternedNode,
    TreeInterner,
    clear_intern_tables,
    fingerprint_computes,
    intern_tree,
    thaw_tree,
)
from repro.algebra.properties import DescriptorSchema, PropertyDef, PropertyType
from repro.bench.harness import build_optimizer_pair
from repro.volcano.explain import explain_plan
from repro.volcano.plancache import tree_fingerprint
from repro.volcano.search import SearchOptions, VolcanoOptimizer
from repro.workloads.queries import make_query_instance

SCHEMA = DescriptorSchema(
    [
        PropertyDef("join_predicate", PropertyType.PREDICATE),
        PropertyDef("attributes", PropertyType.ATTRS),
        PropertyDef("num_records", PropertyType.FLOAT),
    ]
)
ARGS = ("join_predicate", "attributes")


def d(**values):
    return Descriptor(SCHEMA, values)


@pytest.fixture(autouse=True)
def _fresh_global_table():
    clear_intern_tables()
    yield
    clear_intern_tables()


class TestDescriptorInterner:
    def test_equal_descriptors_share_one_canonical(self):
        interner = DescriptorInterner(SCHEMA)
        first = d(num_records=10.0)
        second = d(num_records=10.0)
        assert interner.canonical(first) is first
        assert interner.canonical(second) is first
        assert interner.hits == 1 and interner.inserts == 1

    def test_distinct_values_stay_distinct(self):
        interner = DescriptorInterner(SCHEMA)
        first = interner.canonical(d(num_records=1.0))
        second = interner.canonical(d(num_records=2.0))
        assert first is not second
        assert len(interner) == 2

    def test_list_vs_tuple_not_conflated(self):
        interner = DescriptorInterner(SCHEMA)
        as_list = d(attributes=["a", "b"])
        as_tuple = d(attributes=("a", "b"))
        assert interner.canonical(as_list) is as_list
        # Equal frozen projection, different raw value types: rejected.
        assert interner.canonical(as_tuple) is as_tuple
        assert interner.rejects == 1

    def test_table_bound_respected(self):
        interner = DescriptorInterner(SCHEMA, max_entries=1)
        interner.canonical(d(num_records=1.0))
        overflow = d(num_records=2.0)
        assert interner.canonical(overflow) is overflow
        assert len(interner) == 1 and interner.rejects == 1

    def test_value_slots_collapse_to_canonical_objects(self):
        """Two descriptors with different value *sets* still share the
        value objects they have in common — the hash-consing level where
        the real memo redundancy lives."""
        interner = DescriptorInterner(SCHEMA)
        first = d(attributes=["a", "b"], num_records=1.0)
        second = d(attributes=["a", "b"], num_records=2.0)
        interner.canonical(first)
        interner.canonical(second)
        assert second["attributes"] is first["attributes"]
        assert interner.values_shared >= 1

    def test_value_rewiring_preserves_equality_and_projection(self):
        interner = DescriptorInterner(SCHEMA)
        first = d(attributes=["a"], num_records=1.0)
        second = d(attributes=["a"], num_records=2.0)
        before = second.project(SCHEMA.names)
        interner.canonical(first)
        interner.canonical(second)
        assert second.project(SCHEMA.names) == before
        assert second["attributes"] == ["a"]


class TestTreeInterning:
    def _tree(self, pair, qname="Q5", joins=2):
        catalog, tree = make_query_instance(pair.schema, qname, joins, 0)
        return catalog, tree

    def test_equal_trees_intern_to_same_object(self):
        pair = build_optimizer_pair("oodb")
        _, tree_a = self._tree(pair)
        _, tree_b = self._tree(pair)
        assert intern_tree(tree_a) is intern_tree(tree_b)

    def test_interned_fingerprint_matches_plain_fingerprint(self):
        pair = build_optimizer_pair("oodb")
        _, tree = self._tree(pair)
        args = pair.generated.argument_properties
        assert tree_fingerprint(
            intern_tree(tree), args
        ) == tree_fingerprint(tree, args)

    def test_fingerprint_memoized_on_revisit(self):
        """Re-fingerprinting an interned tree is O(1): zero fresh
        computations, however large the shared subtree."""
        pair = build_optimizer_pair("oodb")
        _, tree = self._tree(pair, joins=3)
        args = pair.generated.argument_properties
        interned = intern_tree(tree)
        interned.fingerprint(args)
        before = fingerprint_computes()
        for _ in range(10):
            interned.fingerprint(args)
        assert fingerprint_computes() == before

    def test_shared_subtree_fingerprints_once(self):
        """Two trees sharing an interned subtree pay for it once: the
        second tree's fingerprint only computes its unshared spine."""
        pair = build_optimizer_pair("oodb")
        _, small = self._tree(pair, joins=2)
        _, large = self._tree(pair, joins=3)
        args = pair.generated.argument_properties
        interned_small = intern_tree(small)
        interned_large = intern_tree(large)
        interned_small.fingerprint(args)
        baseline = fingerprint_computes()
        interned_large.fingerprint(args)
        spine_cost = fingerprint_computes() - baseline
        # The large tree contains the small one as a subtree wherever
        # structure repeats; at minimum the memoized nodes are not
        # recomputed, so the spine cost is below the full node count.
        def count_nodes(node):
            if isinstance(node, InternedLeaf):
                return 1
            return 1 + sum(count_nodes(child) for child in node.inputs)

        assert spine_cost < count_nodes(interned_large) or spine_cost == 0

    def test_unpickle_reconstructs_into_intern_table(self):
        pair = build_optimizer_pair("oodb")
        _, tree = self._tree(pair)
        interned = intern_tree(tree)
        clone = pickle.loads(pickle.dumps(interned))
        assert clone is interned

    def test_unpickle_into_fresh_process_table_is_self_consistent(self):
        pair = build_optimizer_pair("oodb")
        _, tree = self._tree(pair)
        interned = intern_tree(tree)
        payload = pickle.dumps(interned)
        clear_intern_tables()  # simulate a different process
        clone_a = pickle.loads(payload)
        clone_b = pickle.loads(payload)
        assert clone_a is clone_b
        args = pair.generated.argument_properties
        assert tree_fingerprint(clone_a, args) == tree_fingerprint(tree, args)

    def test_thawed_tree_is_mutable_and_equivalent(self):
        pair = build_optimizer_pair("oodb")
        catalog, tree = self._tree(pair)
        thawed = thaw_tree(intern_tree(tree))
        args = pair.generated.argument_properties
        assert tree_fingerprint(thawed, args) == tree_fingerprint(tree, args)
        # Thawed descriptors are private copies: writing one must not
        # touch the interned canonical.
        thawed.descriptor["num_records"] = 123.0
        assert intern_tree(tree).descriptor["num_records"] != 123.0

    def test_private_table_isolated_from_global(self):
        pair = build_optimizer_pair("oodb")
        _, tree = self._tree(pair)
        private = TreeInterner()
        node = intern_tree(tree, private)
        assert intern_tree(tree) is not node
        assert private.stats()["nodes"] > 0


class TestEngineIntegration:
    @pytest.mark.parametrize("qname,joins", [("Q5", 2), ("Q7", 2)])
    def test_interning_changes_nothing_and_shrinks_memo(self, qname, joins):
        """The acceptance bar: interning on vs off gives bit-identical
        plans and costs while retaining measurably fewer objects."""
        pair = build_optimizer_pair("oodb")
        results = {}
        for enabled in (True, False):
            catalog, tree = make_query_instance(pair.schema, qname, joins, 0)
            result = VolcanoOptimizer(
                pair.generated,
                catalog,
                options=SearchOptions(intern_descriptors=enabled),
            ).optimize(tree)
            results[enabled] = result
        on, off = results[True], results[False]
        assert on.cost == off.cost
        assert explain_plan(on.plan) == explain_plan(off.plan)
        assert on.stats.memo_descriptor_objects < off.stats.memo_descriptor_objects
        assert on.stats.descriptor_values_shared > 0

    def test_interning_counters_surface_via_metrics(self):
        from repro.obs import MetricsRegistry

        pair = build_optimizer_pair("oodb")
        catalog, tree = make_query_instance(pair.schema, "Q5", 2, 0)
        result = VolcanoOptimizer(pair.generated, catalog).optimize(tree)
        registry = MetricsRegistry()
        registry.record_search_stats(result.stats)
        counters = registry.counters()
        assert counters["search.descriptor_values_shared"] > 0
        assert counters["search.memo_descriptor_objects"] > 0

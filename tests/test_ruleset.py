"""Unit tests for Prairie rule-set containers and whole-set validation."""

import pytest

from repro.algebra.operations import Algorithm, Operator
from repro.algebra.properties import DescriptorSchema, PropertyDef, PropertyType
from repro.errors import RuleSetError
from repro.prairie.build import block, copy_desc, node, var
from repro.prairie.rules import IRule, TRule
from repro.prairie.ruleset import PrairieRuleSet


def make_schema():
    return DescriptorSchema(
        [
            PropertyDef("cost", PropertyType.COST),
            PropertyDef("tuple_order", PropertyType.ORDER),
        ]
    )


def make_ruleset():
    rs = PrairieRuleSet("test", make_schema())
    rs.declare_operator(Operator.streams("SORT", 1))
    rs.declare_operator(Operator.streams("JOIN", 2))
    rs.declare_algorithm(Algorithm.streams("Merge_sort", 1))
    rs.declare_algorithm(Algorithm.streams("Nested_loops", 2))
    return rs


def sort_merge_sort():
    return IRule(
        name="sort_ms",
        lhs=node("SORT", var("S1", "D1"), desc="D2"),
        rhs=node("Merge_sort", var("S1"), desc="D3"),
        pre_opt=block(copy_desc("D3", "D2")),
    )


def sort_null():
    return IRule(
        name="sort_null",
        lhs=node("SORT", var("S1", "D1"), desc="D2"),
        rhs=node("Null", var("S1", "D3"), desc="D4"),
    )


def join_nl():
    return IRule(
        name="join_nl",
        lhs=node("JOIN", var("S1"), var("S2"), desc="D1"),
        rhs=node("Nested_loops", var("S1"), var("S2"), desc="D2"),
    )


class TestDeclarations:
    def test_null_always_available(self):
        rs = make_ruleset()
        assert "Null" in rs.algorithms

    def test_duplicate_operator_rejected(self):
        rs = make_ruleset()
        with pytest.raises(RuleSetError):
            rs.declare_operator(Operator.streams("SORT", 1))

    def test_operator_algorithm_name_clash_rejected(self):
        rs = make_ruleset()
        with pytest.raises(RuleSetError):
            rs.declare_algorithm(Algorithm.streams("SORT", 1))

    def test_duplicate_rule_name_rejected(self):
        rs = make_ruleset()
        rs.add_irule(join_nl())
        with pytest.raises(RuleSetError):
            rs.add_irule(
                IRule(
                    name="join_nl",
                    lhs=node("JOIN", var("S1"), var("S2"), desc="D1"),
                    rhs=node("Nested_loops", var("S1"), var("S2"), desc="D2"),
                )
            )


class TestQueries:
    def test_i_rules_for(self):
        rs = make_ruleset()
        rs.add_irule(sort_merge_sort())
        rs.add_irule(sort_null())
        rs.add_irule(join_nl())
        assert [r.name for r in rs.i_rules_for("SORT")] == ["sort_ms", "sort_null"]

    def test_algorithms_for(self):
        rs = make_ruleset()
        rs.add_irule(sort_merge_sort())
        rs.add_irule(sort_null())
        names = [a.name for a in rs.algorithms_for("SORT")]
        assert names == ["Merge_sort", "Null"]

    def test_null_ruled_operators(self):
        rs = make_ruleset()
        rs.add_irule(sort_merge_sort())
        rs.add_irule(sort_null())
        assert rs.null_ruled_operators() == ("SORT",)

    def test_rules_iterator(self):
        rs = make_ruleset()
        rs.add_irule(join_nl())
        assert len(list(rs.rules())) == 1

    def test_counts(self):
        rs = make_ruleset()
        rs.add_irule(join_nl())
        counts = rs.counts()
        assert counts["operators"] == 2
        assert counts["algorithms"] == 2  # Null excluded
        assert counts["i_rules"] == 1


class TestValidation:
    def test_valid_set_passes(self):
        rs = make_ruleset()
        rs.add_irule(sort_merge_sort())
        rs.add_irule(sort_null())
        rs.add_irule(join_nl())
        rs.validate()

    def test_undeclared_operator_in_rule_flagged(self):
        rs = make_ruleset()
        rs.add_irule(
            IRule(
                name="bad",
                lhs=node("MYSTERY", var("S1"), desc="D1"),
                rhs=node("Merge_sort", var("S1"), desc="D2"),
            )
        )
        rs.add_irule(join_nl())
        problems = rs.problems()
        assert any("MYSTERY" in p for p in problems)

    def test_undeclared_algorithm_flagged(self):
        rs = make_ruleset()
        rs.add_irule(
            IRule(
                name="bad",
                lhs=node("SORT", var("S1"), desc="D1"),
                rhs=node("Quick_sort", var("S1"), desc="D2"),
            )
        )
        assert any("Quick_sort" in p for p in rs.problems())

    def test_unused_algorithm_flagged(self):
        rs = make_ruleset()
        rs.add_irule(join_nl())
        assert any("Merge_sort" in p for p in rs.problems())

    def test_trule_arity_mismatch_flagged(self):
        rs = make_ruleset()
        rs.add_trule(
            TRule(
                name="bad_arity",
                lhs=node("SORT", var("S1"), var("S2"), desc="D1"),
                rhs=node("JOIN", var("S1"), var("S2"), desc="D2"),
            )
        )
        assert any("SORT takes 1" in p for p in rs.problems())

    def test_null_rule_missing_requirement_descriptor_flagged(self):
        rs = make_ruleset()
        rs.add_irule(
            IRule(
                name="bad_null",
                lhs=node("SORT", var("S1", "D1"), desc="D2"),
                rhs=node("Null", var("S1"), desc="D4"),  # no :D3 on input
            )
        )
        assert any("D3 of Equation (6)" in p for p in rs.problems())

    def test_validate_raises_on_problems(self):
        rs = make_ruleset()
        with pytest.raises(RuleSetError):
            rs.validate()  # unused algorithms

    def test_repr(self):
        assert "PrairieRuleSet" in repr(make_ruleset())

"""Pickle round-trip tests: the batch optimizer's IPC contract.

Everything that crosses a process boundary in :mod:`repro.parallel` —
operator trees, catalogs, finished plans, :class:`Winner`,
:class:`SearchStats`, plan-cache entries and snapshots — must survive
serialize→deserialize with costs, fingerprints, and semantics intact.
"""

import pickle

import pytest

from repro.algebra.descriptors import Descriptor
from repro.algebra.properties import DONT_CARE
from repro.bench.harness import build_optimizer_pair
from repro.volcano.explain import explain_plan
from repro.volcano.plancache import (
    CachedPlan,
    MemoSummary,
    PlanCache,
    tree_fingerprint,
)
from repro.volcano.search import (
    SearchOptions,
    SearchStats,
    VolcanoOptimizer,
    Winner,
)
from repro.workloads.queries import make_query_instance


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.fixture(scope="module")
def optimized():
    """One finished Q5 optimization shared by the round-trip tests."""
    pair = build_optimizer_pair("oodb")
    catalog, tree = make_query_instance(pair.schema, "Q5", 2, 0)
    cache = PlanCache()
    optimizer = VolcanoOptimizer(pair.generated, catalog, plan_cache=cache)
    result = optimizer.optimize(tree)
    return pair, catalog, tree, cache, result


class TestScalarPieces:
    def test_dont_care_stays_singleton(self):
        assert roundtrip(DONT_CARE) is DONT_CARE
        assert roundtrip((DONT_CARE, DONT_CARE)) == (DONT_CARE, DONT_CARE)

    def test_descriptor_roundtrip(self, optimized):
        pair, _, tree, _, _ = optimized
        descriptor = tree.descriptor
        clone = roundtrip(descriptor)
        assert clone == descriptor
        assert clone.schema == descriptor.schema
        names = descriptor.schema.names
        assert clone.project(names) == descriptor.project(names)
        # The clone is live: writes validate against the schema.
        clone["num_records"] = 42.0
        assert clone["num_records"] == 42.0

    def test_search_options_roundtrip(self):
        options = SearchOptions(
            disabled_rules=frozenset({"JoinComm"}), max_groups=10
        )
        clone = roundtrip(options)
        assert clone == options
        assert hash(clone) == hash(options)

    def test_search_stats_roundtrip(self, optimized):
        *_, result = optimized
        clone = roundtrip(result.stats)
        assert clone.as_dict() == result.stats.as_dict()
        # Merged clones keep accumulating (sets survived as sets).
        clone.merge(result.stats)
        assert clone.mexprs == 2 * result.stats.mexprs


class TestTreesAndPlans:
    def test_query_tree_fingerprint_survives(self, optimized):
        pair, _, tree, _, _ = optimized
        args = pair.generated.argument_properties
        clone = roundtrip(tree)
        assert tree_fingerprint(clone, args) == tree_fingerprint(tree, args)

    def test_plan_roundtrip_explains_identically(self, optimized):
        *_, result = optimized
        clone = roundtrip(result.plan)
        assert explain_plan(clone) == explain_plan(result.plan)

    def test_roundtripped_tree_reoptimizes_identically(self, optimized):
        pair, catalog, tree, _, result = optimized
        clone_tree = roundtrip(tree)
        clone_catalog = roundtrip(catalog)
        again = VolcanoOptimizer(pair.generated, clone_catalog).optimize(
            clone_tree
        )
        assert again.cost == result.cost
        assert explain_plan(again.plan) == explain_plan(result.plan)

    def test_winner_roundtrip(self, optimized):
        *_, result = optimized
        winner = Winner(
            plan=result.plan,
            cost=result.cost,
            delivered=(DONT_CARE,),
            rule_name="r",
            provenance="p",
            algorithm="a",
        )
        clone = roundtrip(winner)
        assert clone.cost == winner.cost
        assert clone.delivered == winner.delivered
        assert clone.rule_name == "r"
        assert explain_plan(clone.plan) == explain_plan(winner.plan)


class TestCacheEntries:
    def test_cached_plan_roundtrip_validates_by_token(self, optimized):
        _, catalog, _, _, result = optimized
        entry = CachedPlan(
            plan=result.plan,
            cost=result.cost,
            memo=MemoSummary(result.stats.groups, result.stats.mexprs),
            catalog=None,
            catalog_version=-1,
            catalog_token=catalog.state_token(),
        )
        clone = roundtrip(entry)
        assert clone.cost == result.cost
        assert clone.memo.group_count == result.stats.groups
        fresh_catalog = roundtrip(catalog)
        assert clone.is_valid(fresh_catalog)
        # Token hit rebound the entry; identity path now works too.
        assert clone.catalog is fresh_catalog
        assert clone.is_valid(fresh_catalog)

    def test_full_cache_snapshot_roundtrip(self, optimized):
        pair, catalog, tree, cache, result = optimized
        snapshot = roundtrip(cache.snapshot(pair.generated, "tests:oodb"))
        target = PlanCache()
        assert target.merge_snapshot(snapshot, pair.generated) == len(snapshot)
        optimizer = VolcanoOptimizer(
            pair.generated, roundtrip(catalog), plan_cache=target
        )
        warm = optimizer.optimize(roundtrip(tree))
        assert warm.stats.plan_cache_hits == 1
        assert warm.cost == result.cost
        assert explain_plan(warm.plan) == explain_plan(result.plan)

    def test_memo_roundtrip_drops_process_local_hooks(self, optimized):
        *_, result = optimized
        memo = result.memo
        clone = roundtrip(memo)
        assert clone.group_count == memo.group_count
        assert clone.mexpr_count == memo.mexpr_count
        assert clone._emit is None
        assert clone._descriptor_interner is None

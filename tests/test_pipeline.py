"""End-to-end integration: the Figure 8 optimizer-generator pipeline.

Prairie specification text → parse → validate → P2V (detect, merge,
classify, generate) → Volcano rule set → top-down search → access plan →
execution — the complete path a user of the library takes.
"""

import pytest

from repro import (
    Database,
    VolcanoOptimizer,
    compile_spec,
    execute_plan,
    naive_evaluate,
    translate,
)
from repro.engine.executor import rows_multiset
from repro.optimizers.helpers import domain_helpers
from repro.prairie.codegen import format_prairie_spec, format_volcano_spec
from repro.workloads import make_query_instance
from repro.workloads.catalogs import make_experiment_catalog
from repro.workloads.trees import TreeBuilder

SPEC = """
property file_name           : string;
property attributes          : attrs;
property num_records         : float;
property tuple_size          : float;
property selection_predicate : predicate;
property join_predicate      : predicate;
property tuple_order         : order;
property cost                : cost;

operator RET(file);
operator JOIN(stream, stream);
operator SORT(stream);

algorithm File_scan(file);
algorithm Hash_join(stream, stream);
algorithm Merge_sort(stream);
algorithm Null(stream);

trule join_commute:
    JOIN(?S1:DL1, ?S2:DL2):D1 => JOIN(?S2, ?S1):D2
    {{ }}
    ( TRUE )
    {{
        D2 = D1;
        D2.attributes = union(DL2.attributes, DL1.attributes);
    }}

irule ret_file_scan:
    RET(?F:DF):D1 => File_scan(?F):D2
    ( TRUE )
    {{ D2 = D1; D2.tuple_order = DONT_CARE; }}
    {{ D2.cost = scan_cost(D1.file_name); }}

irule join_hash:
    JOIN(?S1:D1, ?S2:D2):D3 => Hash_join(?S1, ?S2):D4
    ( has_equijoin(D3.join_predicate) )
    {{ D4 = D3; D4.tuple_order = DONT_CARE; }}
    {{ D4.cost = D1.cost + D2.cost + 0.01 * (D1.num_records + 2 * D2.num_records); }}

irule sort_merge_sort:
    SORT(?S1:D1):D2 => Merge_sort(?S1):D3
    ( D2.tuple_order != DONT_CARE && contains(D2.attributes, D2.tuple_order) )
    {{ D3 = D2; }}
    {{ D3.cost = D1.cost + 0.02 * D3.num_records * log2(D3.num_records); }}

irule sort_null:
    SORT(?S1:D1):D2 => Null(?S1:D3):D4
    ( TRUE )
    {{ D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }}
    {{ D4.cost = D3.cost; }}
"""


@pytest.fixture(scope="module")
def pipeline():
    prairie = compile_spec(SPEC, name="pipeline", helpers=domain_helpers())
    translation = translate(prairie)
    return prairie, translation


class TestFigure8Pipeline:
    def test_spec_compiles(self, pipeline):
        prairie, _ = pipeline
        assert len(prairie.t_rules) == 1
        assert len(prairie.i_rules) == 4

    def test_p2v_output_shape(self, pipeline):
        _, translation = pipeline
        volcano = translation.volcano
        assert len(volcano.trans_rules) == 1
        assert len(volcano.impl_rules) == 2
        assert len(volcano.enforcers) == 1
        assert translation.analysis.enforcer_operators == ("SORT",)

    def test_optimize_and_execute(self, pipeline, schema):
        _, translation = pipeline
        catalog = make_experiment_catalog(
            3, with_targets=False, fixed_cardinality=40
        )
        builder = TreeBuilder(translation.volcano.schema, catalog)
        from repro.workloads.expressions import build_e1

        tree = build_e1(builder, 2)
        result = VolcanoOptimizer(translation.volcano, catalog).optimize(tree)
        db = Database(catalog, seed=1)
        assert rows_multiset(execute_plan(result.plan, db)) == rows_multiset(
            naive_evaluate(tree, db)
        )

    def test_sorted_output_end_to_end(self, pipeline):
        _, translation = pipeline
        from repro.engine.iterators import is_sorted_on

        catalog = make_experiment_catalog(
            2, with_targets=False, fixed_cardinality=30
        )
        builder = TreeBuilder(translation.volcano.schema, catalog)
        tree = builder.ret("C1")
        result = VolcanoOptimizer(translation.volcano, catalog).optimize(
            tree, required=("a1",)
        )
        assert result.plan.op.name == "Merge_sort"
        db = Database(catalog, seed=1)
        assert is_sorted_on(execute_plan(result.plan, db), "a1")

    def test_spec_emitters_round(self, pipeline):
        prairie, translation = pipeline
        prairie_text = format_prairie_spec(prairie)
        volcano_text = format_volcano_spec(translation)
        reparsed = compile_spec(prairie_text, helpers=prairie.helpers)
        assert len(reparsed.i_rules) == 4
        assert "enforcer sort_merge_sort" in volcano_text


class TestPublicApi:
    def test_quickstart_from_docstring(self, schema):
        """The README/module-docstring quickstart must actually run."""
        from repro import build_oodb_prairie

        prairie = build_oodb_prairie()
        volcano = translate(prairie).volcano
        catalog, tree = make_query_instance(prairie.schema, "Q5", n_joins=2)
        result = VolcanoOptimizer(volcano, catalog).optimize(tree)
        assert result.cost > 0
        assert result.equivalence_classes > 0

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

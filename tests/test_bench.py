"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    ExperimentConfig,
    OptimizerPair,
    build_optimizer_pair,
    full_mode,
    run_query_point,
    sweep_query,
)
from repro.bench.reporting import format_seconds, format_table, print_series
from repro.bench.timing import adaptive_repeats, time_callable


class TestTiming:
    def test_time_callable_returns_result(self):
        seconds, result = time_callable(lambda: 42, repeats=2)
        assert result == 42
        assert seconds >= 0

    def test_time_callable_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: 1, repeats=0)

    def test_adaptive_repeats_bounds(self):
        assert adaptive_repeats(0.0) == 50
        assert adaptive_repeats(10.0) == 1
        assert adaptive_repeats(0.1, budget_seconds=1.0) == 10


class TestConfig:
    def test_quick_smaller_than_full(self):
        quick, full = ExperimentConfig.quick(), ExperimentConfig.full()
        assert quick.instances < full.instances
        for template in ("E1", "E2", "E4"):
            assert quick.max_joins[template] <= full.max_joins[template]

    def test_full_reproduces_paper_axes(self):
        full = ExperimentConfig.full()
        assert full.max_joins["E1"] == 8
        assert full.max_joins["E3"] == 3
        assert full.instances == 5

    def test_from_environment_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert not full_mode()
        assert ExperimentConfig.from_environment().instances == 2

    def test_from_environment_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert full_mode()
        assert ExperimentConfig.from_environment().instances == 5


class TestHarness:
    @pytest.fixture(scope="class")
    def pair(self):
        return build_optimizer_pair("oodb")

    def test_pair_cached(self, pair):
        assert build_optimizer_pair("oodb") is pair

    def test_pair_contents(self, pair):
        assert isinstance(pair, OptimizerPair)
        assert pair.generated.provenance == "p2v-generated"
        assert pair.hand_coded.provenance == "hand-coded"

    def test_relational_pair(self):
        pair = build_optimizer_pair("relational")
        assert pair.generated.counts()["impl_rules"] == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_optimizer_pair("mystery")

    def test_run_query_point(self, pair):
        point = run_query_point(pair, "Q1", n_joins=2, instances=2)
        assert point.qid == "Q1"
        assert point.prairie_seconds > 0
        assert point.volcano_seconds > 0
        assert point.equivalence_classes == 9
        assert point.trans_matched == 2
        assert point.instances == 2

    def test_overhead_percent(self, pair):
        point = run_query_point(pair, "Q1", n_joins=1, instances=1)
        assert -100.0 < point.overhead_percent < 1000.0

    def test_sweep_query(self, pair):
        config = ExperimentConfig(instances=1, max_joins={"E1": 3})
        points = sweep_query(pair, "Q1", config)
        assert [p.n_joins for p in points] == [1, 2, 3]
        classes = [p.equivalence_classes for p in points]
        assert classes == sorted(classes)

    def test_divergent_pair_detected(self, pair):
        """The harness refuses to benchmark two optimizers that disagree:
        a silent divergence would make the Figures 10–13 comparison
        meaningless."""
        from repro.bench.harness import OptimizerPair

        relational = build_optimizer_pair("relational")
        frankenstein = OptimizerPair(
            prairie=pair.prairie,
            translation=pair.translation,       # oodb-generated ...
            hand_coded=relational.hand_coded,   # ... vs relational hand-coded
        )
        with pytest.raises(AssertionError):
            run_query_point(frankenstein, "Q1", n_joins=2, instances=1)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "---" in lines[1]

    def test_format_seconds_scales(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(2.0).endswith("s")

    def test_print_series(self):
        pair = build_optimizer_pair("oodb")
        point = run_query_point(pair, "Q1", n_joins=1, instances=1)
        text = print_series("Figure X", [point])
        assert "Figure X" in text
        assert "Prairie" in text
        assert "eq.classes" in text

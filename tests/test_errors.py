"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_prairie_error(self):
        subclasses = [
            errors.AlgebraError,
            errors.DescriptorError,
            errors.RuleError,
            errors.RuleSetError,
            errors.DslError,
            errors.DslSyntaxError,
            errors.DslNameError,
            errors.ActionError,
            errors.TranslationError,
            errors.SearchError,
            errors.NoPlanFoundError,
            errors.CatalogError,
            errors.ExecutionError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.PrairieError)

    def test_descriptor_error_is_algebra_error(self):
        assert issubclass(errors.DescriptorError, errors.AlgebraError)

    def test_no_plan_is_search_error(self):
        assert issubclass(errors.NoPlanFoundError, errors.SearchError)

    def test_dsl_errors_nest(self):
        assert issubclass(errors.DslSyntaxError, errors.DslError)
        assert issubclass(errors.DslNameError, errors.DslError)


class TestDslErrorPositions:
    def test_position_embedded_in_message(self):
        exc = errors.DslSyntaxError("unexpected token", line=7, column=12)
        assert exc.line == 7
        assert exc.column == 12
        assert "line 7" in str(exc)
        assert "column 12" in str(exc)

    def test_zero_line_omits_position(self):
        exc = errors.DslNameError("unknown helper")
        assert "line" not in str(exc)

    def test_catchable_as_prairie_error(self):
        with pytest.raises(errors.PrairieError):
            raise errors.DslSyntaxError("boom", 1, 1)


class TestLexerPositionsSurface:
    def test_parse_error_carries_real_position(self):
        from repro.prairie.dsl import parse_spec

        source = "property cost : cost;\nproperty bad ;"
        with pytest.raises(errors.DslSyntaxError) as info:
            parse_spec(source)
        assert info.value.line == 2

"""Unit tests for operators and algorithms (first-class operations)."""

import pytest

from repro.algebra.operations import (
    Algorithm,
    DatabaseOperation,
    InputKind,
    NULL_ALGORITHM_NAME,
    Operator,
    make_null_algorithm,
)
from repro.errors import AlgebraError


class TestConstruction:
    def test_operator_default_single_stream(self):
        op = Operator("SORT")
        assert op.arity == 1
        assert op.inputs == (InputKind.STREAM,)

    def test_streams_builder(self):
        op = Operator.streams("JOIN", 2)
        assert op.arity == 2
        assert all(k is InputKind.STREAM for k in op.inputs)

    def test_on_file_builder(self):
        op = Operator.on_file("RET")
        assert op.inputs == (InputKind.FILE,)

    def test_invalid_name_rejected(self):
        with pytest.raises(AlgebraError):
            Operator("BAD NAME")

    def test_empty_name_rejected(self):
        with pytest.raises(AlgebraError):
            Operator("")

    def test_underscores_allowed(self):
        assert Algorithm("Merge_sort").name == "Merge_sort"

    def test_list_inputs_coerced_to_tuple(self):
        op = Operator("X", [InputKind.STREAM])
        assert isinstance(op.inputs, tuple)

    def test_non_inputkind_rejected(self):
        with pytest.raises(AlgebraError):
            Operator("X", ("stream",))  # type: ignore[arg-type]


class TestKindPredicates:
    def test_operator_is_operator(self):
        op = Operator("JOIN", (InputKind.STREAM, InputKind.STREAM))
        assert op.is_operator
        assert not op.is_algorithm

    def test_algorithm_is_algorithm(self):
        alg = Algorithm.streams("Hash_join", 2)
        assert alg.is_algorithm
        assert not alg.is_operator

    def test_str_is_name(self):
        assert str(Operator("JOIN", (InputKind.STREAM,) * 2)) == "JOIN"


class TestNullAlgorithm:
    def test_make_null(self):
        null = make_null_algorithm()
        assert null.name == NULL_ALGORITHM_NAME
        assert null.is_null
        assert null.arity == 1

    def test_other_algorithms_not_null(self):
        assert not Algorithm.streams("Merge_sort", 1).is_null


class TestEquality:
    def test_value_equality(self):
        assert Operator.streams("JOIN", 2) == Operator.streams("JOIN", 2)

    def test_hashable(self):
        ops = {Operator.streams("JOIN", 2), Operator.on_file("RET")}
        assert len(ops) == 2

    def test_tuning_parameters(self):
        alg = Algorithm("Hash_join", (InputKind.STREAM,) * 2, tuning=("buckets",))
        assert alg.tuning == ("buckets",)

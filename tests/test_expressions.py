"""Unit tests for operator trees and access plans."""

import pytest

from repro.algebra.descriptors import Descriptor
from repro.algebra.expressions import (
    Expression,
    StoredFileRef,
    count_nodes,
    format_tree,
    interior_nodes,
    is_access_plan,
    is_logical,
    leaves,
    tree_depth,
    walk,
)
from repro.algebra.operations import Algorithm, Operator
from repro.algebra.properties import DescriptorSchema, PropertyDef, PropertyType
from repro.errors import AlgebraError

SCHEMA = DescriptorSchema([PropertyDef("cost", PropertyType.COST)])
RET = Operator.on_file("RET")
JOIN = Operator.streams("JOIN", 2)
FILE_SCAN = Algorithm.on_file("File_scan")
HASH_JOIN = Algorithm.streams("Hash_join", 2)


def d():
    return Descriptor(SCHEMA)


def leaf(name="R1"):
    return StoredFileRef(name, d())


def ret(name="R1"):
    return Expression(RET, (leaf(name),), d())


def join(left, right):
    return Expression(JOIN, (left, right), d())


class TestConstruction:
    def test_arity_enforced(self):
        with pytest.raises(AlgebraError):
            Expression(JOIN, (ret(),), d())

    def test_file_input_requires_leaf(self):
        with pytest.raises(AlgebraError):
            Expression(RET, (ret(),), d())

    def test_stream_input_accepts_expression(self):
        tree = join(ret("R1"), ret("R2"))
        assert tree.op is JOIN

    def test_stream_input_accepts_file_leaf(self):
        # A bare file can feed a stream operator (its tuples stream out).
        tree = Expression(JOIN, (leaf("R1"), leaf("R2")), d())
        assert len(tree.inputs) == 2

    def test_str(self):
        assert str(join(ret("R1"), ret("R2"))) == "JOIN(RET(R1), RET(R2))"


class TestTraversal:
    def test_walk_preorder(self):
        tree = join(ret("R1"), ret("R2"))
        kinds = [
            node.op.name if isinstance(node, Expression) else node.name
            for node in walk(tree)
        ]
        assert kinds == ["JOIN", "RET", "R1", "RET", "R2"]

    def test_leaves(self):
        tree = join(ret("R1"), ret("R2"))
        assert [f.name for f in leaves(tree)] == ["R1", "R2"]

    def test_interior_nodes(self):
        tree = join(ret("R1"), ret("R2"))
        assert [n.op.name for n in interior_nodes(tree)] == ["JOIN", "RET", "RET"]

    def test_count_nodes(self):
        assert count_nodes(join(ret(), ret("R2"))) == 5

    def test_tree_depth(self):
        assert tree_depth(leaf()) == 1
        assert tree_depth(ret()) == 2
        assert tree_depth(join(ret(), ret("R2"))) == 3


class TestClassification:
    def test_logical_tree(self):
        tree = join(ret("R1"), ret("R2"))
        assert is_logical(tree)
        assert not is_access_plan(tree)

    def test_access_plan(self):
        plan = Expression(
            HASH_JOIN,
            (
                Expression(FILE_SCAN, (leaf("R1"),), d()),
                Expression(FILE_SCAN, (leaf("R2"),), d()),
            ),
            d(),
        )
        assert is_access_plan(plan)
        assert not is_logical(plan)

    def test_mixed_tree_is_neither(self):
        mixed = Expression(
            JOIN,
            (
                Expression(FILE_SCAN, (leaf("R1"),), d()),
                ret("R2"),
            ),
            d(),
        )
        assert not is_access_plan(mixed)
        assert not is_logical(mixed)


class TestUtilities:
    def test_signature_ignores_descriptors(self):
        a = join(ret("R1"), ret("R2"))
        b = join(ret("R1"), ret("R2"))
        b.descriptor["cost"] = 99.0
        assert a.signature() == b.signature()

    def test_signature_distinguishes_shape(self):
        assert join(ret("R1"), ret("R2")).signature() != join(
            ret("R2"), ret("R1")
        ).signature()

    def test_with_inputs(self):
        tree = join(ret("R1"), ret("R2"))
        swapped = tree.with_inputs((tree.inputs[1], tree.inputs[0]))
        assert [f.name for f in leaves(swapped)] == ["R2", "R1"]

    def test_copy_tree_is_deep(self):
        tree = join(ret("R1"), ret("R2"))
        clone = tree.copy_tree()
        clone.descriptor["cost"] = 1.0
        assert tree.descriptor["cost"] != 1.0
        inner = clone.inputs[0]
        assert isinstance(inner, Expression)
        inner.descriptor["cost"] = 2.0
        first = tree.inputs[0]
        assert isinstance(first, Expression)
        assert first.descriptor["cost"] != 2.0

    def test_format_tree(self):
        text = format_tree(join(ret("R1"), ret("R2")))
        lines = text.splitlines()
        assert lines[0] == "JOIN"
        assert lines[1] == "  RET"
        assert lines[2] == "    R1"

    def test_format_tree_with_annotation(self):
        text = format_tree(ret("R1"), annotate=lambda n: "!")
        assert "RET  !" in text
